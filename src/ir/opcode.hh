/**
 * @file
 * LightIR opcode set.
 *
 * LightIR is a small RISC-like register machine standing in for post-RA
 * LLVM MIR: 16 physical general-purpose registers, explicit loads/stores,
 * branches between basic blocks, calls, and the synchronization operations
 * (fence / atomic / lock) at which the LightWSP compiler must place region
 * boundaries (paper §III-D). Two opcodes exist only as compiler output:
 * Boundary (the PC-checkpointing store delimiting a region) and CkptStore
 * (a live-out register checkpoint store).
 */

#ifndef LWSP_IR_OPCODE_HH
#define LWSP_IR_OPCODE_HH

#include <cstdint>

namespace lwsp {
namespace ir {

/** Number of architectural general-purpose registers. */
constexpr unsigned numGprs = 16;

enum class Opcode : std::uint8_t
{
    // Data movement / arithmetic.
    Movi,   ///< rd = imm
    Mov,    ///< rd = rs1
    Add,    ///< rd = rs1 + rs2
    Sub,    ///< rd = rs1 - rs2
    Mul,    ///< rd = rs1 * rs2
    Div,    ///< rd = rs1 / rs2 (0 divisor yields 0)
    And,    ///< rd = rs1 & rs2
    Or,     ///< rd = rs1 | rs2
    Xor,    ///< rd = rs1 ^ rs2
    Shl,    ///< rd = rs1 << (rs2 & 63)
    Shr,    ///< rd = rs1 >> (rs2 & 63)
    AddI,   ///< rd = rs1 + imm
    MulI,   ///< rd = rs1 * imm
    Fma,    ///< rd = rs1 * rs2 + rd (models an FP pipe latency class)

    // Memory.
    Load,   ///< rd = mem[rs1 + imm]
    Store,  ///< mem[rs1 + imm] = rs2

    // Control flow (terminators, except Call).
    Jmp,    ///< goto block(target)
    Beq,    ///< if (rs1 == rs2) goto block(target) else fallthrough
    Bne,    ///< if (rs1 != rs2) goto block(target) else fallthrough
    Blt,    ///< if (rs1 <  rs2) goto block(target) else fallthrough (unsigned)
    Bge,    ///< if (rs1 >= rs2) goto block(target) else fallthrough (unsigned)
    Call,   ///< call function(callee); not a terminator
    Ret,    ///< return to caller
    Halt,   ///< terminate the thread's program

    // Synchronization (compiler places region boundaries at these).
    Fence,      ///< full memory fence
    AtomicAdd,  ///< mem[rs1 + imm] += rs2, atomically
    LockAcq,    ///< acquire lock at address rs1 + imm (blocks if held)
    LockRel,    ///< release lock at address rs1 + imm

    // Compiler-inserted persistence instructions.
    Boundary,   ///< region end: PC-checkpointing store + region-ID bump
    CkptStore,  ///< checkpoint register rs1 to its slot in PM

    Nop,
};

/** @return true if @p op writes a destination register. */
constexpr bool
writesReg(Opcode op)
{
    switch (op) {
      case Opcode::Movi:
      case Opcode::Mov:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::AddI:
      case Opcode::MulI:
      case Opcode::Fma:
      case Opcode::Load:
        return true;
      default:
        return false;
    }
}

/** @return true if @p op ends a basic block. */
constexpr bool
isTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Jmp:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ret:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

/** @return true if @p op is a conditional branch (has a fallthrough). */
constexpr bool
isConditionalBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

/**
 * @return true if @p op is a store that travels the persist path
 * (regular stores, checkpoint stores, boundary PC-stores, atomics).
 */
constexpr bool
isPersistentStore(Opcode op)
{
    switch (op) {
      case Opcode::Store:
      case Opcode::CkptStore:
      case Opcode::Boundary:
      case Opcode::AtomicAdd:
        return true;
      default:
        return false;
    }
}

/** @return true if @p op is a synchronization operation (§III-D). */
constexpr bool
isSynchronization(Opcode op)
{
    switch (op) {
      case Opcode::Fence:
      case Opcode::AtomicAdd:
      case Opcode::LockAcq:
      case Opcode::LockRel:
        return true;
      default:
        return false;
    }
}

/** Execution latency class in cycles for the timing model. */
constexpr unsigned
executeLatency(Opcode op)
{
    switch (op) {
      case Opcode::Mul:
      case Opcode::MulI:
        return 3;
      case Opcode::Div:
        return 12;
      case Opcode::Fma:
        return 4;
      default:
        return 1;  // loads get their latency from the memory system
    }
}

/** Stable mnemonic for printing/parsing. */
const char *opcodeName(Opcode op);

/** Parse a mnemonic; returns Nop and sets @p ok false on failure. */
Opcode opcodeFromName(const char *mnemonic, bool &ok);

/**
 * Why a Boundary instruction exists (§III-D placement policy). The kind
 * rides in the instruction's rd field, so it is serialized with the
 * module and validated by the verifier; Split boundaries are the only
 * region-combining merge candidates.
 */
enum class BoundaryKind : std::uint8_t
{
    FuncEntry = 0,
    FuncExit,
    CallBefore,
    CallAfter,
    LoopHeader,
    Sync,
    Split,
};

/** Number of valid BoundaryKind values (raw kinds must be below this). */
constexpr unsigned numBoundaryKinds = 7;

/** @return true if @p raw (a Boundary's rd field) names a valid kind. */
constexpr bool
isValidBoundaryKind(std::uint8_t raw)
{
    return raw < numBoundaryKinds;
}

/** Stable name for printing/parsing (e.g. "func-entry"). */
const char *boundaryKindName(BoundaryKind k);

/** Parse a kind name; sets @p ok false on failure. */
BoundaryKind boundaryKindFromName(const char *name, bool &ok);

} // namespace ir
} // namespace lwsp

#endif // LWSP_IR_OPCODE_HH
