#include "opcode.hh"

#include <cstring>

namespace lwsp {
namespace ir {

namespace {

struct NameEntry
{
    Opcode op;
    const char *lexeme;
};

constexpr NameEntry nameTable[] = {
    {Opcode::Movi, "movi"},       {Opcode::Mov, "mov"},
    {Opcode::Add, "add"},         {Opcode::Sub, "sub"},
    {Opcode::Mul, "mul"},         {Opcode::Div, "div"},
    {Opcode::And, "and"},         {Opcode::Or, "or"},
    {Opcode::Xor, "xor"},         {Opcode::Shl, "shl"},
    {Opcode::Shr, "shr"},         {Opcode::AddI, "addi"},
    {Opcode::MulI, "muli"},       {Opcode::Fma, "fma"},
    {Opcode::Load, "load"},       {Opcode::Store, "store"},
    {Opcode::Jmp, "jmp"},         {Opcode::Beq, "beq"},
    {Opcode::Bne, "bne"},         {Opcode::Blt, "blt"},
    {Opcode::Bge, "bge"},         {Opcode::Call, "call"},
    {Opcode::Ret, "ret"},         {Opcode::Halt, "halt"},
    {Opcode::Fence, "fence"},     {Opcode::AtomicAdd, "atomicadd"},
    {Opcode::LockAcq, "lockacq"}, {Opcode::LockRel, "lockrel"},
    {Opcode::Boundary, "boundary"},
    {Opcode::CkptStore, "ckptstore"},
    {Opcode::Nop, "nop"},
};

} // namespace

const char *
opcodeName(Opcode op)
{
    for (const auto &e : nameTable) {
        if (e.op == op)
            return e.lexeme;
    }
    return "<bad-opcode>";
}

Opcode
opcodeFromName(const char *mnemonic, bool &ok)
{
    for (const auto &e : nameTable) {
        if (std::strcmp(e.lexeme, mnemonic) == 0) {
            ok = true;
            return e.op;
        }
    }
    ok = false;
    return Opcode::Nop;
}

namespace {

constexpr const char *kindNames[numBoundaryKinds] = {
    "func-entry", "func-exit", "call-before", "call-after",
    "loop-header", "sync",     "split",
};

} // namespace

const char *
boundaryKindName(BoundaryKind k)
{
    auto raw = static_cast<std::uint8_t>(k);
    return isValidBoundaryKind(raw) ? kindNames[raw] : "<bad-kind>";
}

BoundaryKind
boundaryKindFromName(const char *name, bool &ok)
{
    for (unsigned i = 0; i < numBoundaryKinds; ++i) {
        if (std::strcmp(kindNames[i], name) == 0) {
            ok = true;
            return static_cast<BoundaryKind>(i);
        }
    }
    ok = false;
    return BoundaryKind::Split;
}

} // namespace ir
} // namespace lwsp
