/**
 * @file
 * LightIR program structure: Instruction, BasicBlock, Function, Module.
 *
 * Blocks are stored by index inside their function; branch targets and the
 * implicit fallthrough of conditional branches reference block indices.
 * A conditional branch falls through to the block stored in its `fallthru`
 * field (kept explicit so block order can be permuted safely).
 */

#ifndef LWSP_IR_PROGRAM_HH
#define LWSP_IR_PROGRAM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "ir/opcode.hh"

namespace lwsp {
namespace ir {

/** Index of a basic block within its function. */
using BlockId = std::uint32_t;
/** Index of a function within its module. */
using FuncId = std::uint32_t;
/** An architectural register number in [0, numGprs). */
using Reg = std::uint8_t;

constexpr BlockId invalidBlock = ~0u;
constexpr FuncId invalidFunc = ~0u;

/**
 * One LightIR instruction. A single POD covers every opcode; unused fields
 * are zero. See Opcode documentation for per-opcode operand meaning.
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg rd = 0;       ///< destination register
    Reg rs1 = 0;      ///< first source (also address base for memory ops)
    Reg rs2 = 0;      ///< second source (also store value)
    std::int64_t imm = 0;   ///< immediate / address offset
    BlockId target = invalidBlock;   ///< branch target
    BlockId fallthru = invalidBlock; ///< conditional-branch fallthrough
    FuncId callee = invalidFunc;     ///< call target

    static Instruction
    movi(Reg rd, std::int64_t imm)
    {
        Instruction i;
        i.op = Opcode::Movi;
        i.rd = rd;
        i.imm = imm;
        return i;
    }

    static Instruction
    alu(Opcode op, Reg rd, Reg rs1, Reg rs2)
    {
        LWSP_ASSERT(writesReg(op), "alu() with non-writing opcode");
        Instruction i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        return i;
    }

    static Instruction
    aluImm(Opcode op, Reg rd, Reg rs1, std::int64_t imm)
    {
        Instruction i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.imm = imm;
        return i;
    }

    static Instruction
    load(Reg rd, Reg base, std::int64_t offset)
    {
        Instruction i;
        i.op = Opcode::Load;
        i.rd = rd;
        i.rs1 = base;
        i.imm = offset;
        return i;
    }

    static Instruction
    store(Reg base, std::int64_t offset, Reg value)
    {
        Instruction i;
        i.op = Opcode::Store;
        i.rs1 = base;
        i.imm = offset;
        i.rs2 = value;
        return i;
    }

    static Instruction
    jmp(BlockId target)
    {
        Instruction i;
        i.op = Opcode::Jmp;
        i.target = target;
        return i;
    }

    static Instruction
    branch(Opcode op, Reg rs1, Reg rs2, BlockId target, BlockId fallthru)
    {
        LWSP_ASSERT(isConditionalBranch(op), "branch() with non-branch");
        Instruction i;
        i.op = op;
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.target = target;
        i.fallthru = fallthru;
        return i;
    }

    static Instruction
    call(FuncId callee)
    {
        Instruction i;
        i.op = Opcode::Call;
        i.callee = callee;
        return i;
    }

    static Instruction
    simple(Opcode op)
    {
        Instruction i;
        i.op = op;
        return i;
    }

    static Instruction
    atomicAdd(Reg base, std::int64_t offset, Reg value)
    {
        Instruction i;
        i.op = Opcode::AtomicAdd;
        i.rs1 = base;
        i.imm = offset;
        i.rs2 = value;
        return i;
    }

    static Instruction
    lockOp(Opcode op, Reg base, std::int64_t offset)
    {
        LWSP_ASSERT(op == Opcode::LockAcq || op == Opcode::LockRel,
                    "lockOp() with non-lock opcode");
        Instruction i;
        i.op = op;
        i.rs1 = base;
        i.imm = offset;
        return i;
    }

    static Instruction
    ckptStore(Reg reg)
    {
        Instruction i;
        i.op = Opcode::CkptStore;
        i.rs1 = reg;
        return i;
    }
};

/** A straight-line sequence of instructions ending in one terminator. */
class BasicBlock
{
  public:
    explicit BasicBlock(BlockId id) : id_(id) {}

    BlockId id() const { return id_; }
    std::vector<Instruction> &insts() { return insts_; }
    const std::vector<Instruction> &insts() const { return insts_; }

    void append(Instruction inst) { insts_.push_back(inst); }

    /** The terminator (last instruction); panics if the block is empty. */
    const Instruction &
    terminator() const
    {
        LWSP_ASSERT(!insts_.empty(), "terminator() of empty block");
        return insts_.back();
    }

    bool
    hasTerminator() const
    {
        return !insts_.empty() && isTerminator(insts_.back().op);
    }

    /** Successor block ids implied by the terminator. */
    std::vector<BlockId>
    successors() const
    {
        std::vector<BlockId> out;
        if (!hasTerminator())
            return out;
        const Instruction &t = terminator();
        if (t.op == Opcode::Jmp) {
            out.push_back(t.target);
        } else if (isConditionalBranch(t.op)) {
            out.push_back(t.target);
            if (t.fallthru != t.target)
                out.push_back(t.fallthru);
        }
        // Ret/Halt: no intra-function successors.
        return out;
    }

  private:
    BlockId id_;
    std::vector<Instruction> insts_;
};

/**
 * A function: blocks indexed by BlockId with block 0 as entry, plus
 * generator-provided metadata (loop trip counts for the unrolling pass).
 */
class Function
{
  public:
    Function(FuncId id, std::string name) : id_(id), name_(std::move(name)) {}

    FuncId id() const { return id_; }
    const std::string &name() const { return name_; }

    BasicBlock &
    addBlock()
    {
        blocks_.push_back(
            std::make_unique<BasicBlock>(static_cast<BlockId>(
                blocks_.size())));
        return *blocks_.back();
    }

    BasicBlock &
    block(BlockId id)
    {
        LWSP_ASSERT(id < blocks_.size(), "bad block id ", id);
        return *blocks_[id];
    }

    const BasicBlock &
    block(BlockId id) const
    {
        LWSP_ASSERT(id < blocks_.size(), "bad block id ", id);
        return *blocks_[id];
    }

    std::size_t numBlocks() const { return blocks_.size(); }

    /**
     * Known trip count for the loop headed at @p header, if the workload
     * generator recorded one (enables non-speculative unrolling).
     */
    std::map<BlockId, std::uint64_t> &loopTripCounts()
    {
        return loop_trip_counts_;
    }
    const std::map<BlockId, std::uint64_t> &loopTripCounts() const
    {
        return loop_trip_counts_;
    }

    /** Total static instruction count across all blocks. */
    std::size_t
    instCount() const
    {
        std::size_t n = 0;
        for (const auto &b : blocks_)
            n += b->insts().size();
        return n;
    }

  private:
    FuncId id_;
    std::string name_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::map<BlockId, std::uint64_t> loop_trip_counts_;
};

/** A whole program: functions (function 0 is the entry) + initial data. */
class Module
{
  public:
    Module() = default;

    Function &
    addFunction(const std::string &name)
    {
        functions_.push_back(std::make_unique<Function>(
            static_cast<FuncId>(functions_.size()), name));
        return *functions_.back();
    }

    Function &
    function(FuncId id)
    {
        LWSP_ASSERT(id < functions_.size(), "bad function id ", id);
        return *functions_[id];
    }

    const Function &
    function(FuncId id) const
    {
        LWSP_ASSERT(id < functions_.size(), "bad function id ", id);
        return *functions_[id];
    }

    /** Find a function by name; returns invalidFunc when absent. */
    FuncId
    findFunction(const std::string &name) const
    {
        for (const auto &f : functions_) {
            if (f->name() == name)
                return f->id();
        }
        return invalidFunc;
    }

    std::size_t numFunctions() const { return functions_.size(); }

    /** Initial (addr, value) memory contents loaded before execution. */
    std::vector<std::pair<Addr, std::uint64_t>> &initialData()
    {
        return initial_data_;
    }
    const std::vector<std::pair<Addr, std::uint64_t>> &initialData() const
    {
        return initial_data_;
    }

    std::size_t
    instCount() const
    {
        std::size_t n = 0;
        for (const auto &f : functions_)
            n += f->instCount();
        return n;
    }

  private:
    std::vector<std::unique_ptr<Function>> functions_;
    std::vector<std::pair<Addr, std::uint64_t>> initial_data_;
};

} // namespace ir
} // namespace lwsp

#endif // LWSP_IR_PROGRAM_HH
