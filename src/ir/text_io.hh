/**
 * @file
 * Human-readable text form of LightIR modules: printing and parsing.
 *
 * The format is line-based. Example:
 * @code
 *   func @main
 *   block 0:
 *     movi r1, 4096
 *     movi r2, 7
 *     store [r1+0], r2
 *     beq r1, r2, b2, b1
 *   block 1:
 *     call @helper
 *     halt
 *   block 2:
 *     halt
 *   func @helper
 *   block 0:
 *     ret
 *   data 0x1000 42
 * @endcode
 * Comments start with ';' and run to end of line.
 */

#ifndef LWSP_IR_TEXT_IO_HH
#define LWSP_IR_TEXT_IO_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "ir/program.hh"

namespace lwsp {
namespace ir {

/** Print one instruction in canonical text form (no trailing newline). */
std::string formatInstruction(const Module &m, const Instruction &inst);

/** Print a whole module to @p os. */
void printModule(const Module &m, std::ostream &os);

/** Convenience: module to string. */
std::string moduleToString(const Module &m);

/**
 * Parse a module from text. Throws FatalError with a line-numbered message
 * on malformed input.
 */
std::unique_ptr<Module> parseModule(const std::string &text);

} // namespace ir
} // namespace lwsp

#endif // LWSP_IR_TEXT_IO_HH
