/**
 * @file
 * Structural validity checks for LightIR modules.
 */

#ifndef LWSP_IR_VERIFIER_HH
#define LWSP_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/program.hh"

namespace lwsp {
namespace ir {

/**
 * Check module well-formedness:
 *  - every block ends in exactly one terminator, with none mid-block;
 *  - branch targets and fallthroughs reference existing blocks;
 *  - call targets reference existing functions;
 *  - register operands are < numGprs;
 *  - the module has an entry function whose entry block exists.
 *
 * @return list of human-readable problems (empty means valid)
 */
std::vector<std::string> verifyModule(const Module &m);

/** verifyModule + panic on the first problem (for tests/tools). */
void verifyModuleOrDie(const Module &m);

} // namespace ir
} // namespace lwsp

#endif // LWSP_IR_VERIFIER_HH
