#include "cfg.hh"

#include <algorithm>
#include <functional>
#include <map>

namespace lwsp {
namespace ir {

Cfg::Cfg(const Function &fn)
    : succs_(fn.numBlocks()), preds_(fn.numBlocks()),
      reachable_(fn.numBlocks(), false)
{
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        succs_[b] = fn.block(b).successors();
        for (BlockId s : succs_[b]) {
            LWSP_ASSERT(s < fn.numBlocks(),
                        "branch target out of range in ", fn.name());
        }
    }
    for (BlockId b = 0; b < fn.numBlocks(); ++b) {
        for (BlockId s : succs_[b])
            preds_[s].push_back(b);
    }

    // Iterative post-order DFS from the entry.
    if (fn.numBlocks() == 0)
        return;
    std::vector<BlockId> post;
    std::vector<std::pair<BlockId, std::size_t>> stack;
    std::vector<bool> visited(fn.numBlocks(), false);
    stack.emplace_back(0, 0);
    visited[0] = true;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        if (next < succs_[b].size()) {
            BlockId s = succs_[b][next++];
            if (!visited[s]) {
                visited[s] = true;
                stack.emplace_back(s, 0);
            }
        } else {
            post.push_back(b);
            stack.pop_back();
        }
    }
    reachable_ = visited;
    rpo_.assign(post.rbegin(), post.rend());
}

DominatorTree::DominatorTree(const Cfg &cfg)
    : cfg_(cfg), idom_(cfg.numBlocks(), invalidBlock),
      rpoIndex_(cfg.numBlocks(), ~0u)
{
    const auto &rpo = cfg.reversePostOrder();
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpoIndex_[rpo[i]] = static_cast<BlockId>(i);

    if (rpo.empty())
        return;
    BlockId entry = rpo.front();
    idom_[entry] = entry;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (rpoIndex_[a] > rpoIndex_[b])
                a = idom_[a];
            while (rpoIndex_[b] > rpoIndex_[a])
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo) {
            if (b == entry)
                continue;
            BlockId new_idom = invalidBlock;
            for (BlockId p : cfg.predecessors(b)) {
                if (!cfg.reachable(p) || idom_[p] == invalidBlock)
                    continue;
                new_idom = (new_idom == invalidBlock)
                               ? p
                               : intersect(new_idom, p);
            }
            if (new_idom != invalidBlock && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

bool
DominatorTree::dominates(BlockId a, BlockId b) const
{
    if (!cfg_.reachable(b))
        return false;
    BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        BlockId up = idom_.at(cur);
        if (up == cur || up == invalidBlock)
            return cur == a;
        cur = up;
    }
}

std::vector<Loop>
findNaturalLoops(const Cfg &cfg, const DominatorTree &dt)
{
    std::map<BlockId, Loop> by_header;

    for (BlockId b = 0; b < cfg.numBlocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        for (BlockId s : cfg.successors(b)) {
            if (!dt.dominates(s, b))
                continue;
            // Back edge b -> s: collect the loop body by walking
            // predecessors from the latch until the header.
            Loop &loop = by_header[s];
            loop.header = s;
            loop.latches.push_back(b);
            std::vector<bool> in_loop(cfg.numBlocks(), false);
            for (BlockId m : loop.blocks)
                in_loop[m] = true;
            if (!in_loop[s]) {
                in_loop[s] = true;
                loop.blocks.push_back(s);
            }
            std::vector<BlockId> work;
            if (!in_loop[b]) {
                in_loop[b] = true;
                loop.blocks.push_back(b);
                work.push_back(b);
            }
            while (!work.empty()) {
                BlockId m = work.back();
                work.pop_back();
                for (BlockId p : cfg.predecessors(m)) {
                    if (!cfg.reachable(p) || in_loop[p])
                        continue;
                    in_loop[p] = true;
                    loop.blocks.push_back(p);
                    work.push_back(p);
                }
            }
        }
    }

    std::vector<Loop> loops;
    loops.reserve(by_header.size());
    for (auto &[header, loop] : by_header) {
        std::sort(loop.blocks.begin(), loop.blocks.end());
        loops.push_back(std::move(loop));
    }
    return loops;
}

} // namespace ir
} // namespace lwsp
