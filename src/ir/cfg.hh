/**
 * @file
 * Control-flow-graph analyses over a Function: predecessor lists, reverse
 * post-order, dominator tree (Cooper-Harvey-Kennedy) and natural loop
 * detection. These feed the LightWSP compiler's region partitioning.
 */

#ifndef LWSP_IR_CFG_HH
#define LWSP_IR_CFG_HH

#include <vector>

#include "ir/program.hh"

namespace lwsp {
namespace ir {

/** Predecessor/successor adjacency + traversal orders for one function. */
class Cfg
{
  public:
    explicit Cfg(const Function &fn);

    const std::vector<BlockId> &successors(BlockId b) const
    {
        return succs_.at(b);
    }
    const std::vector<BlockId> &predecessors(BlockId b) const
    {
        return preds_.at(b);
    }

    /** Reverse post-order over reachable blocks, starting at the entry. */
    const std::vector<BlockId> &reversePostOrder() const { return rpo_; }

    /** @return true if @p b is reachable from the entry. */
    bool reachable(BlockId b) const { return reachable_.at(b); }

    std::size_t numBlocks() const { return succs_.size(); }

  private:
    std::vector<std::vector<BlockId>> succs_;
    std::vector<std::vector<BlockId>> preds_;
    std::vector<BlockId> rpo_;
    std::vector<bool> reachable_;
};

/** Immediate-dominator tree over a Cfg (entry dominates everything). */
class DominatorTree
{
  public:
    explicit DominatorTree(const Cfg &cfg);

    /** Immediate dominator of @p b (entry's idom is itself). */
    BlockId idom(BlockId b) const { return idom_.at(b); }

    /** @return true iff @p a dominates @p b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

  private:
    const Cfg &cfg_;
    std::vector<BlockId> idom_;
    std::vector<BlockId> rpoIndex_;
};

/** One natural loop: header + member blocks + latch edges. */
struct Loop
{
    BlockId header = invalidBlock;
    std::vector<BlockId> blocks;  ///< includes the header
    std::vector<BlockId> latches; ///< sources of back edges into the header

    bool
    contains(BlockId b) const
    {
        for (BlockId m : blocks) {
            if (m == b)
                return true;
        }
        return false;
    }
};

/**
 * Find all natural loops (back edge t->h with h dominating t); loops
 * sharing a header are merged, as is conventional.
 */
std::vector<Loop> findNaturalLoops(const Cfg &cfg, const DominatorTree &dt);

} // namespace ir
} // namespace lwsp

#endif // LWSP_IR_CFG_HH
