#include "verifier.hh"

#include <sstream>

namespace lwsp {
namespace ir {

namespace {

void
checkReg(Reg r, const std::string &where, std::vector<std::string> &out)
{
    if (r >= numGprs) {
        std::ostringstream os;
        os << where << ": register r" << static_cast<unsigned>(r)
           << " out of range";
        out.push_back(os.str());
    }
}

} // namespace

std::vector<std::string>
verifyModule(const Module &m)
{
    std::vector<std::string> problems;

    if (m.numFunctions() == 0) {
        problems.push_back("module has no functions");
        return problems;
    }

    for (FuncId f = 0; f < m.numFunctions(); ++f) {
        const Function &fn = m.function(f);
        if (fn.numBlocks() == 0) {
            problems.push_back("function @" + fn.name() + " has no blocks");
            continue;
        }
        for (BlockId b = 0; b < fn.numBlocks(); ++b) {
            const BasicBlock &bb = fn.block(b);
            std::ostringstream loc;
            loc << '@' << fn.name() << " block " << b;
            const std::string where = loc.str();

            if (bb.insts().empty()) {
                problems.push_back(where + ": empty block");
                continue;
            }
            if (!isTerminator(bb.terminator().op)) {
                problems.push_back(where + ": missing terminator");
            }
            for (std::size_t i = 0; i < bb.insts().size(); ++i) {
                const Instruction &inst = bb.insts()[i];
                bool last = (i + 1 == bb.insts().size());
                if (isTerminator(inst.op) && !last) {
                    problems.push_back(where +
                                       ": terminator before end of block");
                }
                if (writesReg(inst.op))
                    checkReg(inst.rd, where, problems);
                switch (inst.op) {
                  case Opcode::Mov:
                  case Opcode::AddI:
                  case Opcode::MulI:
                  case Opcode::Load:
                  case Opcode::LockAcq:
                  case Opcode::LockRel:
                  case Opcode::CkptStore:
                    checkReg(inst.rs1, where, problems);
                    break;
                  case Opcode::Add:
                  case Opcode::Sub:
                  case Opcode::Mul:
                  case Opcode::Div:
                  case Opcode::And:
                  case Opcode::Or:
                  case Opcode::Xor:
                  case Opcode::Shl:
                  case Opcode::Shr:
                  case Opcode::Fma:
                  case Opcode::Store:
                  case Opcode::AtomicAdd:
                  case Opcode::Beq:
                  case Opcode::Bne:
                  case Opcode::Blt:
                  case Opcode::Bge:
                    checkReg(inst.rs1, where, problems);
                    checkReg(inst.rs2, where, problems);
                    break;
                  default:
                    break;
                }
                if (inst.op == Opcode::Jmp ||
                    isConditionalBranch(inst.op)) {
                    if (inst.target >= fn.numBlocks())
                        problems.push_back(where +
                                           ": branch target out of range");
                }
                if (isConditionalBranch(inst.op) &&
                    inst.fallthru >= fn.numBlocks()) {
                    problems.push_back(where +
                                       ": fallthrough out of range");
                }
                if (inst.op == Opcode::Call &&
                    inst.callee >= m.numFunctions()) {
                    problems.push_back(where + ": callee out of range");
                }
                if (inst.op == Opcode::Boundary &&
                    !isValidBoundaryKind(inst.rd)) {
                    problems.push_back(
                        where + ": invalid boundary kind " +
                        std::to_string(inst.rd));
                }
            }
        }
    }
    return problems;
}

void
verifyModuleOrDie(const Module &m)
{
    auto problems = verifyModule(m);
    if (!problems.empty())
        panic("invalid module: ", problems.front(), " (and ",
              problems.size() - 1, " more)");
}

} // namespace ir
} // namespace lwsp
