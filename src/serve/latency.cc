/**
 * @file
 * LatencyRecorder: extract per-op ServeMark completion timestamps (plus
 * boundary-stall and WPQ-occupancy context) from a trace snapshot, then
 * fold arrival times into exact open-loop latency percentiles via the
 * Lindley recursion. The fold is pure post-processing — no simulation
 * state — so one traced run serves every arrival-rate/burstiness cell.
 */

#include "serve/serve.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/stats.hh"

namespace lwsp {
namespace serve {

OpMarks
LatencyRecorder::extractMarks(const ServeWorkload &wl,
                              const std::vector<trace::Event> &events)
{
    const std::size_t numOps = wl.ops.size();
    OpMarks marks;
    marks.completion.assign(numOps, 0);
    marks.stallCum.assign(numOps, 0);
    marks.wpqOcc.assign(numOps, 0);
    std::vector<bool> seen(numOps, false);

    // Walk chronologically, tracking per-MC WPQ occupancy so each mark
    // can be annotated with the instantaneous max across MCs.
    std::map<std::int32_t, std::uint64_t> occ;
    std::size_t found = 0;
    for (const trace::Event &e : events) {
        if (e.type == trace::EventType::WpqEnqueue) {
            occ[e.unit] = e.aux;
        } else if (e.type == trace::EventType::WpqRelease) {
            occ[e.unit] = trace::releaseOccupancy(e.aux);
        } else if (e.type == trace::EventType::ServeMark) {
            // value = served count after the op (1-based).
            LWSP_ASSERT(e.value >= 1 && e.value <= numOps,
                        "ServeMark value ", e.value,
                        " outside the op tape (", numOps, " ops)");
            std::size_t i = static_cast<std::size_t>(e.value) - 1;
            LWSP_ASSERT(!seen[i], "duplicate ServeMark for op ", e.value);
            seen[i] = true;
            ++found;
            marks.completion[i] = e.tick;
            marks.stallCum[i] = e.aux;
            std::uint64_t mx = 0;
            for (const auto &kv : occ)
                mx = std::max(mx, kv.second);
            marks.wpqOcc[i] = mx;
        }
    }
    LWSP_ASSERT(found == numOps, "trace has ", found, " of ", numOps,
                " ServeMarks — ring buffer wrapped? raise "
                "traceBufferEvents");
    for (std::size_t i = 1; i < numOps; ++i) {
        LWSP_ASSERT(marks.completion[i] > marks.completion[i - 1],
                    "ServeMark ticks not strictly increasing at op ", i);
    }
    return marks;
}

TailReport
LatencyRecorder::fold(const ServeWorkload &wl, const OpMarks &marks,
                      const std::vector<Tick> &arrivals)
{
    const std::size_t n = wl.requests.size();
    LWSP_ASSERT(arrivals.size() == n, "arrival/request count mismatch");
    LWSP_ASSERT(!wl.opEnd.empty() && marks.completion.size() == wl.ops.size(),
                "fold: marks do not cover the op tape");

    // Per-request service time D_r: completing-mark deltas. D_0 starts
    // at tick 0 and so absorbs the driver preamble — a fixed few-cycle
    // constant diluted across the population (see DESIGN.md §14).
    TailReport rep;
    rep.requests = n;
    stats::Percentiles lat;
    std::vector<double> latency(n, 0.0);
    std::vector<std::uint64_t> stallSvc(n, 0);
    std::vector<std::uint64_t> occAt(n, 0);

    double w = 0.0;  // W_{r-1}, queue-time completion of the previous req
    Tick prevC = 0;
    std::uint64_t prevStall = 0;
    for (std::size_t r = 0; r < n; ++r) {
        std::size_t lastOp = wl.opEnd[r] - 1;
        Tick c = marks.completion[lastOp];
        std::uint64_t stall = marks.stallCum[lastOp];
        double d = static_cast<double>(c - prevC);
        double a = static_cast<double>(arrivals[r]);
        double start = std::max(w, a);
        w = start + d;
        latency[r] = w - a;
        stallSvc[r] = stall - prevStall;
        occAt[r] = marks.wpqOcc[lastOp];
        lat.sample(latency[r]);
        prevC = c;
        prevStall = stall;
    }

    rep.p50 = lat.p50();
    rep.p99 = lat.p99();
    rep.p999 = lat.p999();
    rep.max = lat.max();
    rep.mean = lat.mean();

    // Attribute the p99: the first request whose latency equals the
    // nearest-rank p99 sample (deterministic tie-break by request id).
    std::size_t p99r = 0;
    for (std::size_t r = 0; r < n; ++r) {
        if (latency[r] == rep.p99) {
            p99r = r;
            break;
        }
    }
    rep.stallAtP99 = static_cast<double>(stallSvc[p99r]);
    rep.wpqOccAtP99 = occAt[p99r];
    return rep;
}

} // namespace serve
} // namespace lwsp
