/**
 * @file
 * Open-loop request-arrival service model over the pds library.
 *
 * A seeded arrival process (Poisson base rate with configurable burst
 * episodes) and a Zipfian key-popularity distribution generate a
 * deterministic request tape — GET/PUT/DELETE/evict-scan mixes in two
 * named service profiles (a Varnish-style persistent object cache and a
 * horde-`persist`-style KV store). A request compiler lowers the tape
 * onto the pds chained hash table as an injected PdsOp tape, so the
 * identical LightIR driver, oracles, and fuzz machinery from PR 7 apply
 * unchanged to in-flight request streams.
 *
 * Latency attribution (see DESIGN.md §14 for the soundness argument):
 * the simulated server runs requests back-to-back; each op's completion
 * is timestamped by a ServeMark trace event emitted when the driver's
 * served-counter store retires (CoreConfig::serveMarkAddr). Per-request
 * service times D_r are the deltas between completing marks, and
 * open-loop latency follows from the Lindley recursion
 *     W_r = max(W_{r-1}, A_r) + D_r,    latency_r = W_r - A_r,
 * with A_r the tape's arrival times. Because arrivals enter only this
 * post-processing fold, one simulation per (profile, scheme) serves
 * every arrival-rate x burstiness cell, and results are byte-identical
 * at any --jobs count.
 */

#ifndef LWSP_SERVE_SERVE_HH
#define LWSP_SERVE_SERVE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "pds/pds.hh"
#include "trace/events.hh"

namespace lwsp {
namespace serve {

/** Named service profiles (request mixes). */
enum class Profile : std::uint8_t
{
    Varnish,  ///< object cache: GET-heavy, evict scans, no resize
    Horde,    ///< KV store: write-heavy, occasional table resize
};

const char *profileName(Profile p);

/** Everything needed to regenerate a service workload deterministically. */
struct ServeSpec
{
    Profile profile = Profile::Varnish;
    unsigned sizeClass = 1;     ///< pds hash geometry class, 0..2
    unsigned numRequests = 256; ///< requests on the tape
    unsigned meanIa = 2000;     ///< mean inter-arrival time (cycles)
    unsigned burst = 0;         ///< burst preset, 0 (none) .. 2 (heavy)
    std::uint64_t seed = 1;     ///< tape + arrival RNG seed
    unsigned opsPerTx = 4;      ///< pmtx only (forwarded to the PdsSpec)

    /**
     * Canonical one-token form, colon-free so it can ride inside a fuzz
     * replay spec: "varnish,sz=1,reqs=256,ia=2000,burst=0,sseed=1[,tx=K]"
     * (tx omitted at its default).
     */
    std::string toString() const;
    static bool parse(const std::string &text, ServeSpec &out,
                      std::string &err);
};

/** Request vocabulary. */
enum class ReqType : std::uint8_t { Get, Put, Del, Scan, Resize };

const char *reqTypeName(ReqType t);

/** One service request as drawn from the profile mix. */
struct Request
{
    ReqType type = ReqType::Get;
    std::uint64_t key = 0;    ///< 0 for Scan/Resize
    std::uint64_t value = 0;  ///< Put payload
};

/**
 * Deterministic Zipfian sampler over ranks 1..n (classic skew s = 1).
 * The CDF is a normalized harmonic prefix sum — additions and divisions
 * only, so results are IEEE-identical across platforms — and sampling
 * is a binary search on Rng::uniform().
 */
class ZipfSampler
{
  public:
    explicit ZipfSampler(unsigned n);

    /** Rank in [1, n]; rank 1 is the most popular. */
    std::uint64_t sample(Rng &rng) const;

    unsigned universe() const
    {
        return static_cast<unsigned>(cdf_.size());
    }

  private:
    std::vector<double> cdf_;  ///< cdf_[i] = P(rank <= i+1)
};

/**
 * Deterministic natural log for the exponential inter-arrival draw:
 * frexp + atanh series with a fixed term count, basic IEEE ops only —
 * bit-stable across libm implementations. Relative error < 1e-11 on
 * (0, 1]; domain x > 0.
 */
double detLog(double x);

/**
 * Arrival times for spec.numRequests requests: exponential
 * inter-arrivals of mean spec.meanIa cycles, modulated by seeded burst
 * episodes (entry probability / geometric episode length / rate
 * multiplier per spec.burst preset). Uses an RNG stream independent of
 * the request tape's, so the same tape serves every rate/burst setting.
 */
std::vector<Tick> arrivalTimes(const ServeSpec &spec);

/** A generated service workload, lowered and ready to build/run. */
struct ServeWorkload
{
    ServeSpec spec;
    pds::PdsSpec pdsSpec;          ///< hash spec the tape is lowered onto
    std::vector<Request> requests;
    std::vector<pds::PdsOp> ops;   ///< injected pds tape (>= 1 op/request)
    /**
     * opEnd[r] = cumulative op count once request r is done: the
     * request completes when the served counter (= ServeMark value)
     * reaches opEnd[r].
     */
    std::vector<unsigned> opEnd;
};

/**
 * Generate requests from the profile mix + Zipfian keys and lower them
 * onto the pds hash structure (the request compiler). Lowering tracks
 * the live-key set so every emitted op satisfies the pds feasibility
 * invariants; PdsModel's injected-tape constructor re-asserts them.
 */
ServeWorkload buildWorkload(const ServeSpec &spec);

/** Per-op completion data extracted from a trace. */
struct OpMarks
{
    std::vector<Tick> completion;        ///< tick of op i's ServeMark
    std::vector<std::uint64_t> stallCum; ///< cumulative bdry-stall cycles
    std::vector<std::uint64_t> wpqOcc;   ///< max-over-MCs occupancy at mark
};

/** Open-loop tail statistics for one (workload, arrival-pattern) cell. */
struct TailReport
{
    double p50 = 0, p99 = 0, p999 = 0, max = 0, mean = 0;
    /** Boundary-stall cycles inside the p99 request's service time. */
    double stallAtP99 = 0;
    /** Max-over-MCs WPQ occupancy when the p99 request completed. */
    std::uint64_t wpqOccAtP99 = 0;
    std::uint64_t requests = 0;
};

/**
 * Folds ServeMark completion timestamps and tape arrival times into
 * exact request-latency percentiles (the Lindley recursion above), with
 * boundary-stall and WPQ-occupancy attribution at the p99 request.
 */
class LatencyRecorder
{
  public:
    /**
     * Extract per-op marks from a chronological event snapshot. Panics
     * if any op's mark is missing (ring wrap — raise traceBufferEvents).
     * WPQ occupancy is reconstructed from WpqEnqueue/WpqRelease events
     * when present (zero otherwise).
     */
    static OpMarks extractMarks(const ServeWorkload &wl,
                                const std::vector<trace::Event> &events);

    /** Lindley fold of @p arrivals against @p marks. */
    static TailReport fold(const ServeWorkload &wl, const OpMarks &marks,
                           const std::vector<Tick> &arrivals);
};

} // namespace serve
} // namespace lwsp

#endif // LWSP_SERVE_SERVE_HH
