/**
 * @file
 * ServeSpec canonical form, deterministic samplers (Zipf keys,
 * exponential+burst arrivals), request generation from the profile
 * mixes, and the request compiler lowering requests onto the pds hash
 * tape.
 */

#include "serve/serve.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace lwsp {
namespace serve {

const char *
profileName(Profile p)
{
    switch (p) {
      case Profile::Varnish: return "varnish";
      case Profile::Horde: return "horde";
    }
    return "?";
}

const char *
reqTypeName(ReqType t)
{
    switch (t) {
      case ReqType::Get: return "get";
      case ReqType::Put: return "put";
      case ReqType::Del: return "del";
      case ReqType::Scan: return "scan";
      case ReqType::Resize: return "resize";
    }
    return "?";
}

std::string
ServeSpec::toString() const
{
    std::ostringstream os;
    os << profileName(profile) << ",sz=" << sizeClass << ",reqs="
       << numRequests << ",ia=" << meanIa << ",burst=" << burst
       << ",sseed=" << seed;
    if (opsPerTx != 4)
        os << ",tx=" << opsPerTx;
    return os.str();
}

bool
ServeSpec::parse(const std::string &text, ServeSpec &out, std::string &err)
{
    ServeSpec spec;
    std::istringstream is(text);
    std::string tok;
    bool first = true;
    while (std::getline(is, tok, ',')) {
        if (first) {
            first = false;
            if (tok == "varnish") {
                spec.profile = Profile::Varnish;
            } else if (tok == "horde") {
                spec.profile = Profile::Horde;
            } else {
                err = "unknown serve profile '" + tok + "'";
                return false;
            }
            continue;
        }
        auto eq = tok.find('=');
        if (eq == std::string::npos) {
            err = "malformed serve field '" + tok + "'";
            return false;
        }
        std::string key = tok.substr(0, eq);
        std::uint64_t val = std::strtoull(tok.c_str() + eq + 1, nullptr, 10);
        if (key == "sz") {
            spec.sizeClass = static_cast<unsigned>(val);
        } else if (key == "reqs") {
            spec.numRequests = static_cast<unsigned>(val);
        } else if (key == "ia") {
            spec.meanIa = static_cast<unsigned>(val);
        } else if (key == "burst") {
            spec.burst = static_cast<unsigned>(val);
        } else if (key == "sseed") {
            spec.seed = val;
        } else if (key == "tx") {
            spec.opsPerTx = static_cast<unsigned>(val);
        } else {
            err = "unknown serve key '" + key + "'";
            return false;
        }
    }
    if (first) {
        err = "empty serve spec";
        return false;
    }
    if (spec.sizeClass > 2) {
        err = "serve sz out of range";
        return false;
    }
    if (spec.numRequests < 1 || spec.numRequests > 50000) {
        err = "serve reqs out of range";
        return false;
    }
    if (spec.meanIa < 1 || spec.meanIa > 10'000'000) {
        err = "serve ia out of range";
        return false;
    }
    if (spec.burst > 2) {
        err = "serve burst out of range";
        return false;
    }
    if (spec.opsPerTx == 0 || (spec.opsPerTx & (spec.opsPerTx - 1)) != 0 ||
        spec.opsPerTx > 64) {
        err = "serve tx must be a power of two <= 64";
        return false;
    }
    out = spec;
    return true;
}

// ---------------------------------------------------------------------------
// Deterministic samplers.

double
detLog(double x)
{
    LWSP_ASSERT(x > 0.0, "detLog domain");
    int e = 0;
    double m = std::frexp(x, &e);  // m in [0.5, 1), exact
    // ln(m) = 2*atanh(z) with z = (m-1)/(m+1), |z| <= 1/3; a fixed
    // 10-term odd series bounds the truncation error below 1e-11
    // relative, and every operation is a basic IEEE-rounded op.
    double z = (m - 1.0) / (m + 1.0);
    double z2 = z * z;
    double term = z;
    double sum = 0.0;
    for (int k = 1; k <= 19; k += 2) {
        sum += term / k;
        term *= z2;
    }
    constexpr double ln2 = 0.69314718055994530942;
    return 2.0 * sum + static_cast<double>(e) * ln2;
}

ZipfSampler::ZipfSampler(unsigned n)
{
    LWSP_ASSERT(n >= 1, "ZipfSampler over empty universe");
    cdf_.resize(n);
    double h = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        h += 1.0 / static_cast<double>(i + 1);
        cdf_[i] = h;
    }
    for (unsigned i = 0; i < n; ++i)
        cdf_[i] /= h;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();  // [0, 1)
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;  // u rounded above cdf_.back() == 1.0
    return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

namespace {

/** Burst-episode presets indexed by ServeSpec::burst. */
struct BurstPreset
{
    double entryP;    ///< per-arrival episode entry probability
    unsigned meanLen; ///< mean episode length (arrivals)
    double mult;      ///< rate multiplier inside an episode
};

constexpr BurstPreset burstTable[3] = {
    {0.0, 1, 1.0},     // 0: plain Poisson
    {0.02, 16, 4.0},   // 1: mild bursts
    {0.05, 32, 8.0},   // 2: heavy bursts
};

} // namespace

std::vector<Tick>
arrivalTimes(const ServeSpec &spec)
{
    // Own stream: the tape (keys/ops) must not depend on rate/burst so
    // one simulation serves every arrival cell.
    Rng rng(spec.seed ^ 0x73727665'2d617272ull);  // "srve-arr"
    const BurstPreset &b = burstTable[spec.burst];

    std::vector<Tick> out;
    out.reserve(spec.numRequests);
    double t = 0.0;
    bool inBurst = false;
    unsigned left = 0;
    for (unsigned i = 0; i < spec.numRequests; ++i) {
        if (!inBurst && b.entryP > 0.0 && rng.chance(b.entryP)) {
            inBurst = true;
            // Geometric-ish episode length via the exponential draw.
            left = 1 + static_cast<unsigned>(
                           -detLog(1.0 - rng.uniform()) *
                           static_cast<double>(b.meanLen));
        }
        double ia = -detLog(1.0 - rng.uniform()) *
                    static_cast<double>(spec.meanIa);
        if (inBurst) {
            ia /= b.mult;
            if (--left == 0)
                inBurst = false;
        }
        t += ia;
        out.push_back(static_cast<Tick>(t));
    }
    return out;
}

// ---------------------------------------------------------------------------
// Request generation + lowering.

namespace {

/** Request-mix percentages: get / put / del / scan-or-resize. */
struct Mix
{
    unsigned get, put, del;
    ReqType tail;  ///< what the remainder is (Scan or Resize)
};

Mix
mixOf(Profile p)
{
    switch (p) {
      case Profile::Varnish:
        return {72, 18, 6, ReqType::Scan};    // cache: GET-heavy + evictions
      case Profile::Horde:
        return {40, 45, 13, ReqType::Resize}; // KV: write-heavy + resizes
    }
    return {100, 0, 0, ReqType::Scan};
}

} // namespace

ServeWorkload
buildWorkload(const ServeSpec &spec)
{
    ServeWorkload wl;
    wl.spec = spec;
    wl.pdsSpec.kind = pds::Kind::Hash;
    wl.pdsSpec.sizeClass = spec.sizeClass;
    wl.pdsSpec.mix = 0;
    wl.pdsSpec.seed = spec.seed;
    wl.pdsSpec.opsPerTx = spec.opsPerTx;
    // numOps is overridden by the injected tape; set it anyway so
    // toString() of the pds spec is not misleading.

    pds::PdsParams geo = pds::pdsGeometry(wl.pdsSpec);
    const unsigned pool = geo.pool;
    const unsigned universe = 2 * pool;
    ZipfSampler zipf(universe);
    Mix mix = mixOf(spec.profile);

    Rng rng(spec.seed ^ 0x73727665'2d726571ull);  // "srve-req"

    // Live-key tracking mirrors PdsModel's hash semantics so every
    // emitted op is feasible: liveOrder keeps insertion order for the
    // eviction scans (oldest-first, the Varnish ban-walk idiom).
    std::vector<std::uint64_t> liveOrder;
    auto isLive = [&](std::uint64_t k) {
        return std::find(liveOrder.begin(), liveOrder.end(), k) !=
               liveOrder.end();
    };
    auto removeLive = [&](std::uint64_t k) {
        liveOrder.erase(
            std::find(liveOrder.begin(), liveOrder.end(), k));
    };

    for (unsigned i = 0; i < spec.numRequests; ++i) {
        unsigned roll = static_cast<unsigned>(rng.below(100));
        ReqType t = roll < mix.get                       ? ReqType::Get
                    : roll < mix.get + mix.put           ? ReqType::Put
                    : roll < mix.get + mix.put + mix.del ? ReqType::Del
                                                         : mix.tail;
        Request req;
        req.type = t;
        if (t == ReqType::Get || t == ReqType::Put || t == ReqType::Del)
            req.key = zipf.sample(rng);
        if (t == ReqType::Put)
            req.value = rng.next() & 0xffffffffull;
        wl.requests.push_back(req);

        switch (t) {
          case ReqType::Get:
            // Misses are safe: lookup of a non-live key walks the
            // chain, finds nothing, adds 0 to the result accumulator.
            wl.ops.push_back({pds::pdsHashLookup, req.key, 0});
            break;
          case ReqType::Put:
            if (isLive(req.key)) {
                // Overwrite = delete + insert (the pds node stores are
                // immutable once linked).
                wl.ops.push_back({pds::pdsHashDelete, req.key, 0});
                removeLive(req.key);
            } else if (liveOrder.size() >= pool) {
                // Cache full: evict the oldest object first.
                std::uint64_t victim = liveOrder.front();
                wl.ops.push_back({pds::pdsHashDelete, victim, 0});
                removeLive(victim);
            }
            wl.ops.push_back({pds::pdsHashInsert, req.key, req.value});
            liveOrder.push_back(req.key);
            break;
          case ReqType::Del:
            // Delete of a non-live key is a safe no-op chain walk; keep
            // the op so the request still costs one structure op.
            wl.ops.push_back({pds::pdsHashDelete, req.key, 0});
            if (isLive(req.key))
                removeLive(req.key);
            break;
          case ReqType::Scan: {
            // Evict-scan (ban-list sweep): drop the 1..4 oldest
            // objects. An empty cache degenerates to one probe.
            unsigned n = 1 + static_cast<unsigned>(rng.below(4));
            if (liveOrder.empty()) {
                wl.ops.push_back({pds::pdsHashLookup, 1, 0});
            } else {
                n = std::min<unsigned>(
                    n, static_cast<unsigned>(liveOrder.size()));
                for (unsigned j = 0; j < n; ++j) {
                    std::uint64_t victim = liveOrder.front();
                    wl.ops.push_back({pds::pdsHashDelete, victim, 0});
                    removeLive(victim);
                }
            }
            break;
          }
          case ReqType::Resize:
            wl.ops.push_back({pds::pdsHashResize, 0, 0});
            break;
        }
        wl.opEnd.push_back(static_cast<unsigned>(wl.ops.size()));
    }

    wl.pdsSpec.numOps = static_cast<unsigned>(wl.ops.size());
    return wl;
}

} // namespace serve
} // namespace lwsp
