/**
 * @file
 * Baseline persistence designs the paper compares against (§II-C, §V),
 * realised as configuration variants over the shared substrate, plus the
 * analytic hardware-cost and CAM-latency models of §V-G2/G4.
 *
 * Model summaries (axis of difference from LightWSP):
 *  - Capri (HPDC'22): persist path connected at L1 with 64B cacheline
 *    granularity -> 8x persist-path traffic; hardware regions with
 *    front/back-end logging buffers (54KB/core); multi-MC correctness by
 *    stopping the persist path at each region end until the prior region
 *    is fully flushed. Modelled as HwImplicit boundaries + 8x traffic
 *    amplification + drain waits.
 *  - PPA (MICRO'23): store-integrity in the PRF; regions delimited by
 *    register-file pressure (no extra instructions); eager write-back
 *    overlaps persistence with the region's own execution, but the
 *    pipeline stalls at each implicit boundary until every prior store
 *    persisted. Modelled as HwImplicit boundaries + ungated FIFO drain.
 *  - cWSP (ISCA'24): compiler-formed idempotent regions (no register
 *    checkpoint stores); MC speculation persists out of order with undo
 *    logging on every PM write (mitigated delay). Modelled as the
 *    compiled binary without CkptStores, ungated drain at a 1.5x
 *    per-write cost, no boundary waits.
 *  - Ideal PSP (BBB/eADR-class): persistence itself is free, but DRAM
 *    cannot serve as LLC, so every L2 miss pays PM latency.
 *  - Naive sfence: LightWSP's regions with a blocking persist barrier at
 *    every boundary — the ablation motivating LRPO (§III-B).
 */

#ifndef LWSP_BASELINES_BASELINES_HH
#define LWSP_BASELINES_BASELINES_HH

#include <string>

#include "core/system_config.hh"

namespace lwsp {
namespace baselines {

/** Per-core hardware cost of a scheme's persistence support (§V-G4). */
struct HardwareCost
{
    double bytesPerCore = 0;
    std::string breakdown;
};

/**
 * Reproduce the paper's hardware-cost arithmetic for @p scheme under
 * @p cfg (cores, MCs, WPQ/FEB sizes).
 */
HardwareCost hardwareCost(core::Scheme scheme,
                          const core::SystemConfig &cfg);

/**
 * Analytic CAM search latency (§V-G2, CACTI 7 @ 22nm): ~0.99 ns for a
 * 64-entry 8B-granule search, scaling logarithmically with entry count.
 *
 * @return latency in nanoseconds
 */
double camSearchLatencyNs(unsigned entries, unsigned granuleBytes);

/** Same, rounded up to cycles at @p ghz. */
unsigned camSearchLatencyCycles(unsigned entries, unsigned granuleBytes,
                                double ghz = 2.0);

} // namespace baselines
} // namespace lwsp

#endif // LWSP_BASELINES_BASELINES_HH
