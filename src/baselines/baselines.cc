#include "baselines.hh"

#include <cmath>
#include <sstream>

namespace lwsp {
namespace baselines {

HardwareCost
hardwareCost(core::Scheme scheme, const core::SystemConfig &cfg)
{
    HardwareCost hc;
    std::ostringstream os;
    const double cores = cfg.numCores;

    switch (scheme) {
      case core::Scheme::LightWsp: {
        // FEB (512B default) fits in Intel's existing 1KB write-combining
        // buffer; the WPQ matches the commodity iMC's 512B. The only new
        // state is a 2B flush-ID register per MC.
        double feb_bytes = static_cast<double>(cfg.core.febEntries) *
                           persistGranuleBytes;
        double wpq_bytes = static_cast<double>(cfg.mc.wpqEntries) *
                           persistGranuleBytes;
        double new_bytes = 2.0 * cfg.numMcs;  // flush-ID registers
        hc.bytesPerCore = new_bytes / cores;
        os << "FEB " << feb_bytes << "B (covered by 1KB WCB), WPQ "
           << wpq_bytes << "B (commodity iMC), flush-ID 2B x "
           << cfg.numMcs << " MCs => " << hc.bytesPerCore << "B/core";
        break;
      }
      case core::Scheme::Ppa:
        // Store-integrity bookkeeping in rename + PRF pinning metadata
        // (paper-reported figure).
        hc.bytesPerCore = 337.0;
        os << "store-integrity tracking in rename/PRF: 337B/core";
        break;
      case core::Scheme::Capri:
        // Front-end + back-end buffers holding undo and redo logs plus
        // data per entry (paper-reported figure).
        hc.bytesPerCore = 54.0 * 1024.0;
        os << "front/back-end undo+redo log buffers: 54KB/core";
        break;
      case core::Scheme::Cwsp:
        // Epoch tracking in cores + undo-logging acceleration in MCs.
        hc.bytesPerCore = 96.0;
        os << "core/MC speculation state + undo acceleration: ~96B/core";
        break;
      default:
        os << "no persistence hardware";
        break;
    }
    hc.breakdown = os.str();
    return hc;
}

double
camSearchLatencyNs(unsigned entries, unsigned granuleBytes)
{
    // Calibrated to CACTI 7 at 22nm: 64 entries x 8B => 0.99ns. CAM
    // match time grows ~logarithmically with the number of entries and
    // weakly with word width.
    double base = 0.99;
    double entry_scale =
        std::log2(static_cast<double>(entries)) / std::log2(64.0);
    double width_scale =
        1.0 + 0.05 * (std::log2(static_cast<double>(granuleBytes)) -
                      std::log2(8.0));
    return base * entry_scale * width_scale;
}

unsigned
camSearchLatencyCycles(unsigned entries, unsigned granuleBytes,
                       double ghz)
{
    return static_cast<unsigned>(
        nsToCycles(camSearchLatencyNs(entries, granuleBytes), ghz));
}

} // namespace baselines
} // namespace lwsp
