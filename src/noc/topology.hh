/**
 * @file
 * NoC topology description for the LRPO control plane.
 *
 * Two fabrics:
 *
 *  - Flat (the default, and the paper's 2-iMC machine): the router owns a
 *    dedicated link to every MC, boundary broadcasts are an O(MCs) fan-out
 *    and bdry/flush-ACKs are all-to-all MC unicasts — O(MCs^2) messages
 *    per region.
 *
 *  - Tree (radix r): MCs are the leaves of a complete r-ary aggregation
 *    tree whose interior nodes are switch stages. Boundary broadcasts
 *    descend the tree one hop latency per level; ACKs ascend it, each
 *    interior node forwarding a single combined ACK once every child
 *    subtree has reported, and the root announcing the completed round
 *    back down (`BdryAllAcked` / `FlushAllAcked`). Per-region message
 *    count drops from O(MCs^2) to O(MCs).
 *
 * `TreeShape` is pure geometry: node numbering, parent/child maps, and
 * per-node leaf coverage sets. Leaves are node ids 0..N-1 (== McId),
 * interior nodes follow, the root is the highest id. With a single MC the
 * shape degenerates to one node that is both leaf and root.
 */

#ifndef LWSP_NOC_TOPOLOGY_HH
#define LWSP_NOC_TOPOLOGY_HH

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/bitset.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace lwsp {
namespace noc {

struct TopologyConfig
{
    enum class Kind { Flat, Tree };

    Kind kind = Kind::Flat;
    unsigned radix = 4;  ///< children per interior node (tree only)

    bool isTree() const { return kind == Kind::Tree; }

    /** "flat" or "tree<radix>" (e.g. "tree4"); parse() inverts this. */
    std::string
    toString() const
    {
        if (kind == Kind::Flat)
            return "flat";
        return "tree" + std::to_string(radix);
    }

    /** @return true and fill @p out on success; false on a bad token. */
    static bool
    parse(const std::string &text, TopologyConfig &out)
    {
        if (text == "flat") {
            out = TopologyConfig{};
            return true;
        }
        if (text.rfind("tree", 0) == 0) {
            const std::string digits = text.substr(4);
            if (digits.empty())
                return false;
            unsigned radix = 0;
            for (char c : digits) {
                if (c < '0' || c > '9')
                    return false;
                radix = radix * 10 + static_cast<unsigned>(c - '0');
                if (radix > 1024)
                    return false;
            }
            if (radix < 2)
                return false;
            out.kind = Kind::Tree;
            out.radix = radix;
            return true;
        }
        return false;
    }
};

inline bool
operator==(const TopologyConfig &a, const TopologyConfig &b)
{
    return a.kind == b.kind && (a.kind == TopologyConfig::Kind::Flat ||
                                a.radix == b.radix);
}

inline bool
operator!=(const TopologyConfig &a, const TopologyConfig &b)
{
    return !(a == b);
}

/** Geometry of a complete radix-ary aggregation tree over N MC leaves. */
class TreeShape
{
  public:
    static constexpr unsigned invalidNode = ~0u;

    TreeShape(unsigned num_leaves, unsigned radix)
        : numLeaves_(num_leaves), radix_(radix)
    {
        LWSP_ASSERT(num_leaves >= 1, "tree needs at least one leaf");
        LWSP_ASSERT(radix >= 2, "tree radix must be >= 2");

        // Leaves first (node id == McId), then one interior node per
        // group of `radix` consecutive nodes of the level below.
        std::vector<unsigned> level;
        for (unsigned i = 0; i < num_leaves; ++i) {
            level.push_back(i);
            parent_.push_back(invalidNode);
            children_.emplace_back();
        }
        while (level.size() > 1) {
            std::vector<unsigned> next;
            for (std::size_t base = 0; base < level.size(); base += radix) {
                unsigned node = static_cast<unsigned>(parent_.size());
                parent_.push_back(invalidNode);
                children_.emplace_back();
                for (std::size_t k = base;
                     k < std::min(level.size(), base + radix); ++k) {
                    parent_[level[k]] = node;
                    children_[node].push_back(level[k]);
                }
                next.push_back(node);
            }
            level = std::move(next);
        }
        root_ = level.front();

        // Per-node leaf coverage (which MCs live below each node).
        leaves_.resize(parent_.size());
        for (unsigned n = 0; n < parent_.size(); ++n) {
            leaves_[n].reset(num_leaves);
            if (n < num_leaves)
                leaves_[n].set(n);
        }
        // Children always have smaller ids than their parent, so one
        // ascending pass propagates coverage bottom-up.
        for (unsigned n = 0; n < parent_.size(); ++n) {
            for (unsigned c : children_[n]) {
                for (unsigned leaf = 0; leaf < num_leaves; ++leaf) {
                    if (leaves_[c].test(leaf))
                        leaves_[n].set(leaf);
                }
            }
        }
    }

    unsigned numLeaves() const { return numLeaves_; }
    unsigned radix() const { return radix_; }
    unsigned numNodes() const
    {
        return static_cast<unsigned>(parent_.size());
    }
    unsigned root() const { return root_; }
    bool isLeaf(unsigned node) const { return node < numLeaves_; }

    unsigned
    parent(unsigned node) const
    {
        LWSP_ASSERT(node < parent_.size(), "bad tree node");
        return parent_[node];
    }

    const std::vector<unsigned> &
    children(unsigned node) const
    {
        LWSP_ASSERT(node < children_.size(), "bad tree node");
        return children_[node];
    }

    /** MCs reachable below @p node (a leaf covers itself). */
    const DynBitset &
    leavesUnder(unsigned node) const
    {
        LWSP_ASSERT(node < leaves_.size(), "bad tree node");
        return leaves_[node];
    }

    /** Hops from the root down to @p node. */
    unsigned
    depth(unsigned node) const
    {
        unsigned d = 0;
        while (node != root_) {
            node = parent(node);
            ++d;
        }
        return d;
    }

  private:
    unsigned numLeaves_;
    unsigned radix_;
    unsigned root_ = 0;
    std::vector<unsigned> parent_;
    std::vector<std::vector<unsigned>> children_;
    std::vector<DynBitset> leaves_;
};

} // namespace noc
} // namespace lwsp

#endif // LWSP_NOC_TOPOLOGY_HH
