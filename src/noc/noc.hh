/**
 * @file
 * Minimal on-chip network for the LRPO control plane.
 *
 * Carries boundary broadcasts (router -> every MC) and the bdry-ACK /
 * flush-ACK exchanges between MCs, each with a fixed hop latency. Per the
 * paper (§IV-B), MC-to-MC ACKs ride battery-backed links: on power failure
 * `deliverAllNow()` drains them so in-flight ACKs still reach their
 * targets, while anything a core had in flight simply dies with the core.
 */

#ifndef LWSP_NOC_NOC_HH
#define LWSP_NOC_NOC_HH

#include <algorithm>
#include <vector>

#include "common/stats.hh"
#include "mem/persist.hh"
#include "sim/clocked.hh"
#include "sim/delay_line.hh"

namespace lwsp {
namespace noc {

class Noc : public Clocked
{
  public:
    Noc(unsigned num_mcs, Tick hop_latency)
        : Clocked("noc"), hopLatency_(hop_latency), inboxes_(num_mcs)
    {
    }

    /** Register MC endpoints after construction (index = McId). */
    void
    attach(std::vector<mem::McEndpoint *> endpoints)
    {
        LWSP_ASSERT(endpoints.size() == inboxes_.size(),
                    "endpoint count mismatch");
        endpoints_ = std::move(endpoints);
    }

    unsigned numMcs() const { return static_cast<unsigned>(inboxes_.size()); }

    /** MC-to-MC unicast (ACKs). */
    void
    send(McId to, const mem::McMsg &msg, Tick now)
    {
        LWSP_ASSERT(to < inboxes_.size(), "bad MC id");
        inboxes_[to].push(now, hopLatency_, msg);
        ++messagesSent_;
    }

    /** Router broadcast of a region boundary to every MC. */
    void
    broadcastBoundary(RegionId region, Tick now)
    {
        mem::McMsg msg;
        msg.type = mem::McMsg::Type::BdryArrival;
        msg.region = region;
        for (McId mc = 0; mc < inboxes_.size(); ++mc)
            send(mc, msg, now);
        ++boundariesBroadcast_;
    }

    void
    tick(Tick now) override
    {
        for (McId mc = 0; mc < inboxes_.size(); ++mc) {
            while (inboxes_[mc].headReady(now)) {
                mem::McMsg msg = inboxes_[mc].pop();
                endpoints_.at(mc)->receive(msg, now);
            }
        }
    }

    Tick
    nextActiveTick(Tick now) const override
    {
        Tick next = maxTick;
        for (const auto &inbox : inboxes_) {
            if (!inbox.empty())
                next = std::min(next, std::max(now, inbox.headReadyTick()));
        }
        return next;
    }

    /**
     * Power failure: the MC-resident battery guarantees in-flight control
     * messages reach their targets (paper §IV-B/F step 1).
     */
    void
    deliverAllNow(Tick now)
    {
        for (McId mc = 0; mc < inboxes_.size(); ++mc) {
            while (!inboxes_[mc].empty()) {
                mem::McMsg msg = inboxes_[mc].pop();
                endpoints_.at(mc)->receive(msg, now);
            }
        }
    }

    std::uint64_t messagesSent() const { return messagesSent_; }
    std::uint64_t boundariesBroadcast() const
    {
        return boundariesBroadcast_;
    }

  private:
    Tick hopLatency_;
    std::vector<DelayLine<mem::McMsg>> inboxes_;
    std::vector<mem::McEndpoint *> endpoints_;
    std::uint64_t messagesSent_ = 0;
    std::uint64_t boundariesBroadcast_ = 0;
};

} // namespace noc
} // namespace lwsp

#endif // LWSP_NOC_NOC_HH
