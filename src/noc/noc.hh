/**
 * @file
 * Minimal on-chip network for the LRPO control plane.
 *
 * Carries boundary broadcasts (router -> every MC) and the bdry-ACK /
 * flush-ACK exchanges between MCs, each with a fixed hop latency. Per the
 * paper (§IV-B), MC-to-MC ACKs ride battery-backed links: on power failure
 * `deliverAllNow()` drains them so in-flight ACKs still reach their
 * targets, while anything a core had in flight simply dies with the core.
 *
 * Broadcast reliability: the paper assumes the router-to-MC links never
 * lose a boundary broadcast. When the fault layer is armed we drop that
 * assumption, and the router runs an ack/retry protocol instead of
 * fire-and-forget: each broadcast copy carries a `bcastId`, delivery is
 * observed per MC (a link-level ack, folded into the retry timeout
 * rather than modelled as a separate message), and copies still
 * undelivered when the timeout expires are re-sent with exponential
 * backoff. The MC link port deduplicates by bcastId — the second copy
 * of an already-delivered broadcast (a fault-injected duplicate, or a
 * retry racing a merely-slow original) is filtered before it reaches
 * the MC, keeping BdryArrival exactly-once. With the injector armed but
 * all probabilities zero, every copy is delivered before its deadline
 * and the pending entry is erased on arrival — timing and traces are
 * bit-identical to the fire-and-forget path.
 */

#ifndef LWSP_NOC_NOC_HH
#define LWSP_NOC_NOC_HH

#include <algorithm>
#include <vector>

#include "common/stats.hh"
#include "fault/fault.hh"
#include "mem/persist.hh"
#include "sim/clocked.hh"
#include "sim/delay_line.hh"
#include "trace/sink.hh"

namespace lwsp {
namespace noc {

class Noc : public Clocked
{
  public:
    Noc(unsigned num_mcs, Tick hop_latency)
        : Clocked("noc"), hopLatency_(hop_latency), inboxes_(num_mcs),
          retryTimeout_(8 * (hop_latency ? hop_latency : 1))
    {
    }

    /** Register MC endpoints after construction (index = McId). */
    void
    attach(std::vector<mem::McEndpoint *> endpoints)
    {
        LWSP_ASSERT(endpoints.size() == inboxes_.size(),
                    "endpoint count mismatch");
        endpoints_ = std::move(endpoints);
    }

    /** Arm fault injection (null = perfect links, fire-and-forget). */
    void setFaultInjector(fault::FaultInjector *f) { faults_ = f; }
    void setTraceSink(trace::TraceSink *s) { sink_ = s; }

    unsigned numMcs() const { return static_cast<unsigned>(inboxes_.size()); }

    /** MC-to-MC unicast (ACKs). */
    void
    send(McId to, const mem::McMsg &msg, Tick now)
    {
        LWSP_ASSERT(to < inboxes_.size(), "bad MC id");
        inboxes_[to].push(now, hopLatency_, msg);
        ++messagesSent_;
        rearm();
    }

    /** Router broadcast of a region boundary to every MC. */
    void
    broadcastBoundary(RegionId region, Tick now)
    {
        mem::McMsg msg;
        msg.type = mem::McMsg::Type::BdryArrival;
        msg.region = region;
        if (faults_ == nullptr) {
            for (McId mc = 0; mc < inboxes_.size(); ++mc)
                send(mc, msg, now);
            ++boundariesBroadcast_;
            return;
        }
        msg.bcastId = nextBcastId_++;
        PendingBcast pb;
        pb.id = msg.bcastId;
        pb.region = region;
        pb.pendingMask = (inboxes_.size() >= 64)
                             ? ~0ull
                             : ((1ull << inboxes_.size()) - 1);
        pb.deadline = now + retryTimeout_;
        bool pin_drop = faults_->pinnedBcastDrop(now);
        for (McId mc = 0; mc < inboxes_.size(); ++mc)
            sendFaulty(mc, msg, now, pin_drop);
        pending_.push_back(pb);
        ++boundariesBroadcast_;
        rearm();
    }

    void
    tick(Tick now) override
    {
        for (McId mc = 0; mc < inboxes_.size(); ++mc) {
            while (inboxes_[mc].headReady(now)) {
                mem::McMsg msg = inboxes_[mc].pop();
                if (msg.bcastId != 0 && !markDelivered(msg.bcastId, mc))
                    continue;  // duplicate copy: filtered at the port
                endpoints_.at(mc)->receive(msg, now);
            }
        }
        if (faults_ != nullptr && !pending_.empty())
            retryExpired(now);
    }

    Tick
    nextActiveTick(Tick now) const override
    {
        Tick next = maxTick;
        for (const auto &inbox : inboxes_) {
            if (!inbox.empty())
                next = std::min(next, std::max(now, inbox.headReadyTick()));
        }
        for (const auto &pb : pending_) {
            if (pb.pendingMask != 0)
                next = std::min(next, std::max(now, pb.deadline));
        }
        return next;
    }

    /**
     * Power failure: the MC-resident battery guarantees in-flight control
     * messages reach their targets (paper §IV-B/F step 1). The router
     * itself is NOT battery-backed: broadcast copies a faulty link
     * dropped and the router had not yet retried are lost for good — the
     * crash drain then stops before the first region whose boundary is
     * missing at some MC, and recovery degrades to that older epoch.
     */
    void
    deliverAllNow(Tick now)
    {
        for (McId mc = 0; mc < inboxes_.size(); ++mc) {
            while (!inboxes_[mc].empty()) {
                mem::McMsg msg = inboxes_[mc].pop();
                if (msg.bcastId != 0 && !markDelivered(msg.bcastId, mc))
                    continue;  // duplicate copy: filtered at the port
                endpoints_.at(mc)->receive(msg, now);
            }
        }
        if (faults_ != nullptr) {
            for (const auto &pb : pending_) {
                if (pb.pendingMask != 0)
                    ++faults_->bcastLostAtCrash;
            }
            pending_.clear();
        }
    }

    std::uint64_t messagesSent() const { return messagesSent_; }
    std::uint64_t boundariesBroadcast() const
    {
        return boundariesBroadcast_;
    }
    std::uint64_t bcastRetries() const { return bcastRetries_; }

  private:
    /** One not-yet-everywhere-delivered broadcast (fault mode only). */
    struct PendingBcast
    {
        std::uint64_t id = 0;
        RegionId region = invalidRegion;
        std::uint64_t pendingMask = 0;  ///< bit per MC still undelivered
        Tick deadline = 0;
        unsigned attempts = 0;
    };

    /** Send one broadcast copy through the fault injector's fate roll. */
    void
    sendFaulty(McId mc, const mem::McMsg &msg, Tick now, bool pin_drop)
    {
        fault::BcastFate fate =
            pin_drop ? fault::BcastFate::Drop : faults_->bcastFate();
        ++messagesSent_;
        switch (fate) {
          case fault::BcastFate::Deliver:
            inboxes_[mc].push(now, hopLatency_, msg);
            break;
          case fault::BcastFate::Drop:
            ++faults_->bcastDrops;
            break;
          case fault::BcastFate::Delay:
            ++faults_->bcastDelays;
            inboxes_[mc].push(now, hopLatency_ + faults_->bcastDelayCycles(),
                              msg);
            break;
          case fault::BcastFate::Duplicate:
            ++faults_->bcastDups;
            inboxes_[mc].push(now, hopLatency_, msg);
            inboxes_[mc].push(now, hopLatency_, msg);
            break;
        }
    }

    /** @return true on first delivery to @p mc, false for a duplicate. */
    bool
    markDelivered(std::uint64_t id, McId mc)
    {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->id != id)
                continue;
            if (!(it->pendingMask & (1ull << mc)))
                return false;  // this MC already got a copy
            it->pendingMask &= ~(1ull << mc);
            if (it->pendingMask == 0)
                pending_.erase(it);
            return true;
        }
        // The broadcast is complete everywhere: a late duplicate.
        return false;
    }

    /** Re-send undelivered copies whose retry deadline has passed. */
    void
    retryExpired(Tick now)
    {
        for (auto &pb : pending_) {
            if (pb.pendingMask == 0 || now < pb.deadline)
                continue;
            ++pb.attempts;
            ++bcastRetries_;
            ++faults_->bcastRetries;
            mem::McMsg msg;
            msg.type = mem::McMsg::Type::BdryArrival;
            msg.region = pb.region;
            msg.bcastId = pb.id;
            for (McId mc = 0; mc < inboxes_.size(); ++mc) {
                if (pb.pendingMask & (1ull << mc))
                    sendFaulty(mc, msg, now, false);
            }
            // Exponential backoff, capped so deadlines stay sane.
            unsigned shift = std::min(pb.attempts, 6u);
            pb.deadline = now + (retryTimeout_ << shift);
            trace::emitIf<trace::Category::Boundary>(
                sink_, {now, trace::EventType::BcastRetry, -1, 0, pb.region,
                        0, pb.id, pb.attempts});
        }
    }

    Tick hopLatency_;
    std::vector<DelayLine<mem::McMsg>> inboxes_;
    std::vector<mem::McEndpoint *> endpoints_;
    std::uint64_t messagesSent_ = 0;
    std::uint64_t boundariesBroadcast_ = 0;

    // Fault-mode state (empty/unused when faults_ is null).
    fault::FaultInjector *faults_ = nullptr;
    trace::TraceSink *sink_ = nullptr;
    Tick retryTimeout_;
    std::uint64_t nextBcastId_ = 1;
    std::uint64_t bcastRetries_ = 0;
    std::vector<PendingBcast> pending_;
};

} // namespace noc
} // namespace lwsp

#endif // LWSP_NOC_NOC_HH
