/**
 * @file
 * On-chip / on-rack network for the LRPO control plane.
 *
 * Carries boundary broadcasts (router -> every MC) and the bdry-ACK /
 * flush-ACK exchanges between MCs, each with a fixed hop latency. Per the
 * paper (§IV-B), MC-to-MC ACKs ride battery-backed links: on power failure
 * `deliverAllNow()` drains them so in-flight ACKs still reach their
 * targets, while anything a core had in flight simply dies with the core.
 *
 * Two fabrics (see topology.hh):
 *
 *  - Flat (default, the paper's machine): a dedicated router->MC link per
 *    MC; ACKs are all-to-all MC unicasts (O(MCs^2) messages per region).
 *
 *  - Tree (radix r): boundary broadcasts descend a complete r-ary tree
 *    of switch stages, one hop latency per level; ACKs ascend it, each
 *    interior node forwarding one combined ACK once every child subtree
 *    has reported, and the root announcing the completed round back down
 *    as `BdryAllAcked` / `FlushAllAcked` (O(MCs) messages per region).
 *    The ACK/announce plane is battery-backed control traffic and is
 *    always reliable, exactly like flat-mode ACK unicasts; only boundary
 *    broadcasts roll fault fates, and they roll them **per tree link**,
 *    so one bad high link can lose a whole subtree at once.
 *
 * Broadcast reliability: the paper assumes the router-to-MC links never
 * lose a boundary broadcast. When the fault layer is armed we drop that
 * assumption, and the router runs an ack/retry protocol instead of
 * fire-and-forget: each broadcast copy carries a `bcastId`, delivery is
 * observed per MC (a link-level ack, folded into the retry timeout
 * rather than modelled as a separate message), and copies still
 * undelivered when the timeout expires are re-sent with exponential
 * backoff. Retries re-send the *original stored message* (never a
 * reconstruction) and, in tree mode, re-descend only into subtrees that
 * still contain undelivered MCs — a modelling shortcut for the real
 * switch's pruned multicast state; copies it would otherwise deliver
 * twice are filtered at the MC port by `bcastId` dedup anyway. With the
 * injector armed but all probabilities zero, every copy is delivered
 * before its deadline and the pending entry is erased on arrival —
 * timing and traces are bit-identical to the fire-and-forget path.
 *
 * Delivery tracking uses a size-checked DynBitset shared by the retry
 * path and `deliverAllNow` — the old single-`uint64_t` mask made
 * `1ull << mc` undefined behaviour at 64+ MCs and silently aliased
 * delivery above 64 (see common/bitset.hh).
 */

#ifndef LWSP_NOC_NOC_HH
#define LWSP_NOC_NOC_HH

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/bitset.hh"
#include "common/stats.hh"
#include "fault/fault.hh"
#include "mem/persist.hh"
#include "noc/topology.hh"
#include "sim/clocked.hh"
#include "sim/delay_line.hh"
#include "trace/sink.hh"

namespace lwsp {
namespace noc {

class Noc : public Clocked
{
  public:
    Noc(unsigned num_mcs, Tick hop_latency, TopologyConfig topo = {})
        : Clocked("noc"), hopLatency_(hop_latency), numMcs_(num_mcs),
          retryTimeout_(8 * (hop_latency ? hop_latency : 1))
    {
        LWSP_ASSERT(num_mcs >= 1, "Noc needs at least one MC");
        // A single MC has no fabric to aggregate over: degrade to flat.
        if (topo.isTree() && num_mcs > 1) {
            shape_ = std::make_unique<TreeShape>(num_mcs, topo.radix);
            downLinks_.resize(shape_->numNodes());
            upLinks_.resize(shape_->numNodes());
        } else {
            inboxes_.resize(num_mcs);
        }
    }

    /** Register MC endpoints after construction (index = McId). */
    void
    attach(std::vector<mem::McEndpoint *> endpoints)
    {
        LWSP_ASSERT(endpoints.size() == numMcs_,
                    "endpoint count mismatch");
        endpoints_ = std::move(endpoints);
    }

    /** Arm fault injection (null = perfect links, fire-and-forget). */
    void setFaultInjector(fault::FaultInjector *f) { faults_ = f; }
    void setTraceSink(trace::TraceSink *s) { sink_ = s; }

    unsigned numMcs() const { return numMcs_; }
    bool isTree() const { return shape_ != nullptr; }

    /** MC-to-MC unicast (flat-mode ACKs). */
    void
    send(McId to, const mem::McMsg &msg, Tick now)
    {
        LWSP_ASSERT(!isTree(), "unicast send on a tree fabric");
        LWSP_ASSERT(to < inboxes_.size(), "bad MC id");
        inboxes_[to].push(now, hopLatency_, msg);
        ++messagesSent_;
        rearm();
    }

    /**
     * Tree-mode ACK ingress: MC @p from hands its BdryAck/FlushAck to its
     * leaf's uplink; interior nodes aggregate on the way to the root.
     */
    void
    ackUp(McId from, const mem::McMsg &msg, Tick now)
    {
        LWSP_ASSERT(isTree(), "ackUp on a flat fabric");
        LWSP_ASSERT(from < numMcs_, "bad MC id");
        upLinks_[from].push(now, hopLatency_, msg);
        ++messagesSent_;
        rearm();
    }

    /** Router broadcast of a region boundary to every MC. */
    void
    broadcastBoundary(RegionId region, Tick now)
    {
        mem::McMsg msg;
        msg.type = mem::McMsg::Type::BdryArrival;
        msg.region = region;
        if (faults_ == nullptr) {
            if (isTree()) {
                forwardDown(shape_->root(), msg, now, false);
            } else {
                for (McId mc = 0; mc < inboxes_.size(); ++mc)
                    send(mc, msg, now);
            }
            ++boundariesBroadcast_;
            rearm();
            return;
        }
        msg.bcastId = nextBcastId_++;
        PendingBcast pb;
        pb.msg = msg;
        pb.pending.reset(numMcs_);
        pb.pending.setAll();
        pb.deadline = now + retryTimeout_;
        bool pin_drop = faults_->pinnedBcastDrop(now);
        if (isTree()) {
            // The pending entry must exist before the descent so interior
            // forwarding can consult it for subtree pruning.
            pending_.push_back(pb);
            forwardDown(shape_->root(), msg, now, pin_drop);
        } else {
            for (McId mc = 0; mc < inboxes_.size(); ++mc)
                sendFaultyTo(inboxes_[mc], msg, now, pin_drop);
            pending_.push_back(pb);
        }
        ++boundariesBroadcast_;
        rearm();
    }

    void
    tick(Tick now) override
    {
        if (isTree()) {
            for (unsigned n = 0; n < downLinks_.size(); ++n) {
                while (downLinks_[n].headReady(now))
                    handleDownAt(n, downLinks_[n].pop(), now);
            }
            for (unsigned n = 0; n < upLinks_.size(); ++n) {
                while (upLinks_[n].headReady(now))
                    aggregateAt(shape_->parent(n), n, upLinks_[n].pop(),
                                now);
            }
        } else {
            for (McId mc = 0; mc < inboxes_.size(); ++mc) {
                while (inboxes_[mc].headReady(now)) {
                    mem::McMsg msg = inboxes_[mc].pop();
                    if (msg.bcastId != 0 && !markDelivered(msg.bcastId, mc))
                        continue;  // duplicate copy: filtered at the port
                    endpoints_.at(mc)->receive(msg, now);
                }
            }
        }
        if (faults_ != nullptr && !pending_.empty())
            retryExpired(now);
    }

    Tick
    nextActiveTick(Tick now) const override
    {
        Tick next = maxTick;
        for (const auto &inbox : inboxes_) {
            if (!inbox.empty())
                next = std::min(next, std::max(now, inbox.headReadyTick()));
        }
        for (const auto &link : downLinks_) {
            if (!link.empty())
                next = std::min(next, std::max(now, link.headReadyTick()));
        }
        for (const auto &link : upLinks_) {
            if (!link.empty())
                next = std::min(next, std::max(now, link.headReadyTick()));
        }
        for (const auto &pb : pending_) {
            if (pb.pending.any())
                next = std::min(next, std::max(now, pb.deadline));
        }
        return next;
    }

    /**
     * Power failure: the MC-resident battery guarantees in-flight control
     * messages reach their targets (paper §IV-B/F step 1). The router
     * itself is NOT battery-backed: broadcast copies a faulty link
     * dropped and the router had not yet retried are lost for good — the
     * crash drain then stops before the first region whose boundary is
     * missing at some MC, and recovery degrades to that older epoch.
     * On a tree, in-flight copies at interior stages are forwarded
     * reliably the rest of the way down (battery), and the ACK plane
     * drains to quiescence (aggregations may complete mid-drain).
     */
    void
    deliverAllNow(Tick now)
    {
        if (isTree()) {
            bool again = true;
            while (again) {
                again = false;
                for (unsigned n = 0; n < downLinks_.size(); ++n) {
                    while (!downLinks_[n].empty()) {
                        handleDownAt(n, downLinks_[n].pop(), now,
                                     /*reliable=*/true);
                        again = true;
                    }
                }
                for (unsigned n = 0; n < upLinks_.size(); ++n) {
                    while (!upLinks_[n].empty()) {
                        aggregateAt(shape_->parent(n), n,
                                    upLinks_[n].pop(), now);
                        again = true;
                    }
                }
            }
        } else {
            for (McId mc = 0; mc < inboxes_.size(); ++mc) {
                while (!inboxes_[mc].empty()) {
                    mem::McMsg msg = inboxes_[mc].pop();
                    if (msg.bcastId != 0 && !markDelivered(msg.bcastId, mc))
                        continue;  // duplicate copy: filtered at the port
                    endpoints_.at(mc)->receive(msg, now);
                }
            }
        }
        if (faults_ != nullptr) {
            for (const auto &pb : pending_) {
                if (pb.pending.any())
                    ++faults_->bcastLostAtCrash;
            }
            pending_.clear();
        }
    }

    std::uint64_t messagesSent() const { return messagesSent_; }
    std::uint64_t boundariesBroadcast() const
    {
        return boundariesBroadcast_;
    }
    std::uint64_t bcastRetries() const { return bcastRetries_; }

  private:
    /** One not-yet-everywhere-delivered broadcast (fault mode only). */
    struct PendingBcast
    {
        mem::McMsg msg;       ///< original message, re-sent verbatim
        DynBitset pending;    ///< bit per MC still undelivered
        Tick deadline = 0;
        unsigned attempts = 0;
    };

    /** Send one broadcast copy through the fault injector's fate roll. */
    void
    sendFaultyTo(DelayLine<mem::McMsg> &line, const mem::McMsg &msg,
                 Tick now, bool pin_drop)
    {
        fault::BcastFate fate =
            pin_drop ? fault::BcastFate::Drop : faults_->bcastFate();
        ++messagesSent_;
        switch (fate) {
          case fault::BcastFate::Deliver:
            line.push(now, hopLatency_, msg);
            break;
          case fault::BcastFate::Drop:
            ++faults_->bcastDrops;
            break;
          case fault::BcastFate::Delay:
            ++faults_->bcastDelays;
            line.push(now, hopLatency_ + faults_->bcastDelayCycles(), msg);
            break;
          case fault::BcastFate::Duplicate:
            ++faults_->bcastDups;
            line.push(now, hopLatency_, msg);
            line.push(now, hopLatency_, msg);
            break;
        }
    }

    const PendingBcast *
    findPending(std::uint64_t id) const
    {
        for (const auto &pb : pending_) {
            if (pb.msg.bcastId == id)
                return &pb;
        }
        return nullptr;
    }

    /**
     * Tree: push @p msg onto every child link of @p node. Fault-armed
     * broadcasts (bcastId != 0) roll a fate per link and skip subtrees
     * with no undelivered MC left; control traffic (fault-null
     * broadcasts, AllAcked announcements) always rides reliably.
     * @p reliable forces battery-mode forwarding during the crash drain.
     */
    void
    forwardDown(unsigned node, const mem::McMsg &msg, Tick now,
                bool pin_drop, bool reliable = false)
    {
        for (unsigned c : shape_->children(node)) {
            if (msg.bcastId != 0) {
                const PendingBcast *pb = findPending(msg.bcastId);
                if (pb == nullptr ||
                    !pb->pending.intersects(shape_->leavesUnder(c)))
                    continue;  // every MC below already has a copy
                if (!reliable) {
                    sendFaultyTo(downLinks_[c], msg, now, pin_drop);
                    continue;
                }
            }
            downLinks_[c].push(now, hopLatency_, msg);
            ++messagesSent_;
        }
    }

    /** Tree: a message surfaced at @p node on its downlink. */
    void
    handleDownAt(unsigned node, const mem::McMsg &msg, Tick now,
                 bool reliable = false)
    {
        if (shape_->isLeaf(node)) {
            McId mc = static_cast<McId>(node);
            if (msg.bcastId != 0 && !markDelivered(msg.bcastId, mc))
                return;  // duplicate copy: filtered at the port
            endpoints_.at(mc)->receive(msg, now);
            return;
        }
        forwardDown(node, msg, now, /*pin_drop=*/false, reliable);
    }

    /**
     * Tree: an ACK from child @p child arrived at interior node
     * @p node. Once every child subtree has reported for this
     * (type, region), forward one combined ACK up — or, at the root,
     * announce the completed round to every MC.
     */
    void
    aggregateAt(unsigned node, unsigned child, const mem::McMsg &msg,
                Tick now)
    {
        LWSP_ASSERT(node != TreeShape::invalidNode, "ack above the root");
        auto &slot = aggState_[node][{static_cast<int>(msg.type),
                                      msg.region}];
        const auto &kids = shape_->children(node);
        if (slot.size() == 0)
            slot.reset(kids.size());
        for (std::size_t i = 0; i < kids.size(); ++i) {
            if (kids[i] == child) {
                slot.set(i);
                break;
            }
        }
        if (slot.count() != kids.size())
            return;
        aggState_[node].erase({static_cast<int>(msg.type), msg.region});
        if (node == shape_->root()) {
            mem::McMsg ann;
            ann.type = (msg.type == mem::McMsg::Type::BdryAck)
                           ? mem::McMsg::Type::BdryAllAcked
                           : mem::McMsg::Type::FlushAllAcked;
            ann.region = msg.region;
            forwardDown(node, ann, now, /*pin_drop=*/false);
            return;
        }
        upLinks_[node].push(now, hopLatency_, msg);
        ++messagesSent_;
    }

    /** @return true on first delivery to @p mc, false for a duplicate. */
    bool
    markDelivered(std::uint64_t id, McId mc)
    {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->msg.bcastId != id)
                continue;
            if (!it->pending.test(mc))
                return false;  // this MC already got a copy
            it->pending.clear(mc);
            if (it->pending.none())
                pending_.erase(it);
            return true;
        }
        // The broadcast is complete everywhere: a late duplicate.
        return false;
    }

    /** Re-send undelivered copies whose retry deadline has passed. */
    void
    retryExpired(Tick now)
    {
        for (auto &pb : pending_) {
            if (pb.pending.none() || now < pb.deadline)
                continue;
            ++pb.attempts;
            ++bcastRetries_;
            ++faults_->bcastRetries;
            if (isTree()) {
                forwardDown(shape_->root(), pb.msg, now, false);
            } else {
                for (McId mc = 0; mc < numMcs_; ++mc) {
                    if (pb.pending.test(mc))
                        sendFaultyTo(inboxes_[mc], pb.msg, now, false);
                }
            }
            // Exponential backoff, capped so deadlines stay sane.
            unsigned shift = std::min(pb.attempts, 6u);
            pb.deadline = now + (retryTimeout_ << shift);
            trace::emitIf<trace::Category::Boundary>(
                sink_, {now, trace::EventType::BcastRetry, -1, 0,
                        pb.msg.region, 0, pb.msg.bcastId, pb.attempts});
        }
    }

    Tick hopLatency_;
    unsigned numMcs_;
    std::vector<DelayLine<mem::McMsg>> inboxes_;  ///< flat: router->MC
    std::vector<mem::McEndpoint *> endpoints_;
    std::uint64_t messagesSent_ = 0;
    std::uint64_t boundariesBroadcast_ = 0;

    // Tree-mode fabric (null/empty on a flat fabric).
    std::unique_ptr<TreeShape> shape_;
    /** Link from parent(n) down to node n, indexed by n (root unused). */
    std::vector<DelayLine<mem::McMsg>> downLinks_;
    /** Link from node n up to parent(n), indexed by n (root unused). */
    std::vector<DelayLine<mem::McMsg>> upLinks_;
    /** Per interior node: (msg type, region) -> children heard from. */
    std::map<unsigned, std::map<std::pair<int, RegionId>, DynBitset>>
        aggState_;

    // Fault-mode state (empty/unused when faults_ is null).
    fault::FaultInjector *faults_ = nullptr;
    trace::TraceSink *sink_ = nullptr;
    Tick retryTimeout_;
    std::uint64_t nextBcastId_ = 1;
    std::uint64_t bcastRetries_ = 0;
    std::vector<PendingBcast> pending_;
};

} // namespace noc
} // namespace lwsp

#endif // LWSP_NOC_NOC_HH
