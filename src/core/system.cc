#include "system.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace lwsp {
namespace core {

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Baseline: return "baseline";
      case Scheme::PspIdeal: return "psp-ideal";
      case Scheme::LightWsp: return "lightwsp";
      case Scheme::NaiveSfence: return "naive-sfence";
      case Scheme::Ppa: return "ppa";
      case Scheme::Capri: return "capri";
      case Scheme::Cwsp: return "cwsp";
    }
    return "<bad>";
}

const char *
recoveryOutcomeName(RecoveryOutcome o)
{
    switch (o) {
      case RecoveryOutcome::Recovered: return "recovered";
      case RecoveryOutcome::RecoveredDegraded: return "recovered-degraded";
      case RecoveryOutcome::DetectedUnrecoverable:
        return "detected-unrecoverable";
    }
    return "<bad>";
}

namespace {

/** Reject numMcs == 0 before the Noc member is built (it asserts). */
unsigned
checkedNumMcs(unsigned num_mcs)
{
    if (num_mcs < 1)
        fatal("SystemConfig::numMcs must be >= 1 (got 0): every address "
              "needs an owning memory controller");
    return num_mcs;
}

} // namespace

System::System(const SystemConfig &cfg,
               const compiler::CompiledProgram &program,
               unsigned num_threads)
    : cfg_(cfg), program_(program),
      noc_(checkedNumMcs(cfg.numMcs), cfg.nocHopLatency, cfg.topology)
{
    LWSP_ASSERT(num_threads >= 1, "need at least one thread");
    // Keep the MC-side view of the fabric in lockstep with the Noc even
    // when the caller skipped applySchemeDefaults().
    cfg_.mc.numMcs = cfg_.numMcs;
    cfg_.mc.treeAcks = cfg_.topology.isTree() && cfg_.numMcs > 1;

    // Initial data into both images; PC slots start at the no-site
    // sentinel so recovery can tell "never persisted a boundary" from
    // boundary site 0.
    for (const auto &[addr, value] : program.module->initialData()) {
        execMem_.write(addr, value);
        pm_.write(addr, value);
    }
    for (ThreadId t = 0; t < num_threads; ++t) {
        execMem_.write(program.layout.pcSlot(t), noSiteSentinel);
        pm_.write(program.layout.pcSlot(t), noSiteSentinel);
    }

    if (cfg_.oraclesEnabled) {
        oracle_ = std::make_unique<mem::LrpoOracle>(cfg_.numMcs,
                                                    cfg_.mc.gatingEnabled,
                                                    cfg_.mc.treeAcks);
        cfg_.mc.oracle = oracle_.get();
    }

    if (cfg_.traceEnabled) {
        traceSink_ = std::make_unique<trace::TraceSink>(
            cfg_.traceBufferEvents, cfg_.traceMask);
        cfg_.mc.sink = traceSink_.get();
        cfg_.core.sink = traceSink_.get();
    }

    if (cfg_.faults.enabled) {
        faultInjector_ = std::make_unique<fault::FaultInjector>(
            cfg_.faults, cfg_.seed);
        noc_.setFaultInjector(faultInjector_.get());
        noc_.setTraceSink(traceSink_.get());
    }

    std::vector<mem::McEndpoint *> endpoints;
    for (McId m = 0; m < cfg_.numMcs; ++m) {
        mcs_.push_back(std::make_unique<mem::MemController>(
            m, cfg_.mc, pm_, noc_));
        endpoints.push_back(mcs_.back().get());
    }
    noc_.attach(std::move(endpoints));

    l2_ = std::make_unique<mem::Cache>("l2", cfg_.l2);

    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        l1d_.push_back(std::make_unique<mem::Cache>(
            "core" + std::to_string(c) + ".l1d", cfg_.l1d));
        cores_.push_back(
            std::make_unique<cpu::Core>(c, cfg_.core, *this));
        // Buffer snooping (§IV-G): dirty L1 victims whose line still
        // sits in this core's front-end buffer cannot be evicted.
        cpu::Core *core = cores_.back().get();
        l1d_.back()->setEvictionFilter(
            cfg_.victimPolicy,
            [core](Addr line) { return !core->febContainsLine(line); });
    }

    for (ThreadId t = 0; t < num_threads; ++t) {
        threads_.push_back(std::make_unique<cpu::ThreadContext>(
            program_, t, execMem_, locks_, regionAlloc_));
        threads_.back()->setHardenedCkpt(cfg_.faults.hardenedCkpt);
        threads_.back()->reset(0);
        // Each thread's first region opens at cycle 0 on its home core;
        // later begins are emitted at boundary retirement.
        trace::emitIf<trace::Category::Region>(
            traceSink_.get(),
            {0, trace::EventType::RegionBegin,
             static_cast<std::int32_t>(t % cfg_.numCores), t,
             threads_.back()->currentRegion(), 0, 0, 0});
    }

    runQueues_.resize(cfg_.numCores);
    runIndex_.assign(cfg_.numCores, 0);
    for (ThreadId t = 0; t < num_threads; ++t)
        runQueues_[t % cfg_.numCores].push_back(t);
    for (const auto &q : runQueues_)
        multiQueued_ = multiQueued_ || q.size() >= 2;
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        if (!runQueues_[c].empty())
            cores_[c]->setThread(threads_[runQueues_[c][0]].get());
    }

    sim_.setEngine(cfg_.engine);
    sim_.setVerifyWakeups(cfg_.verifyWakeups);
    for (auto &core : cores_)
        sim_.add(core.get());
    sim_.add(&noc_);
    for (auto &mc : mcs_)
        sim_.add(mc.get());
}

McId
System::mcForAddr(Addr addr) const
{
    // numMcs >= 1 is enforced at construction, so the modulo is safe and
    // total: every address maps to exactly one controller for ANY MC
    // count, including non-powers-of-two (asserted over numMcs in
    // {3, 5, 6, 64} by test_topo's seeded cross-check). Non-power-of-two
    // counts simply shard lines unequally-but-completely under
    // LineInterleave; HashShard decorrelates strided streams from the
    // controller index first.
    Addr line = addr / cachelineBytes;
    if (cfg_.shardPolicy == SystemConfig::ShardPolicy::HashShard)
        line = (line * 0x9E3779B97F4A7C15ull) >> 17;
    return static_cast<McId>(line % cfg_.numMcs);
}

bool
System::done() const
{
    for (const auto &t : threads_) {
        if (!t->halted())
            return false;
    }
    for (const auto &c : cores_) {
        if (!c->drained())
            return false;
    }
    for (const auto &m : mcs_) {
        if (!m->wpq().empty())
            return false;
    }
    return true;
}

void
System::scheduleThreads(Tick now)
{
    if (now < nextScheduleCheck_)
        return;
    nextScheduleCheck_ = now + 256;

    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        auto &queue = runQueues_[c];
        if (queue.size() < 2)
            continue;
        cpu::Core &core = *cores_[c];
        cpu::ThreadContext *cur = core.thread();

        bool quantum_over = (now % cfg_.ctxQuantum) < 256;
        bool should_switch = cur == nullptr || cur->halted() ||
                             core.lockBlocked() || quantum_over;
        if (!should_switch)
            continue;

        // Next runnable (non-halted) thread in round-robin order; skip
        // past the current thread so a blocked lock-waiter can never
        // shadow the runnable lock holder behind it in the queue.
        for (std::size_t step = 1; step <= queue.size(); ++step) {
            std::size_t idx = (runIndex_[c] + step) % queue.size();
            cpu::ThreadContext *cand = threads_[queue[idx]].get();
            if (cand->halted() || cand == cur || cand->wouldBlock())
                continue;
            trace::emitIf<trace::Category::Sched>(
                traceSink_.get(),
                {now, trace::EventType::CtxSwitch,
                 static_cast<std::int32_t>(c), cand->tid(), invalidRegion,
                 0, 0, cur ? cur->tid() : ~0ull});
            core.setThread(cand);
            runIndex_[c] = idx;
            if (std::getenv("LWSP_SCHED_TRACE")) {
                std::fprintf(stderr, "[%llu] core%u -> thread %u\n",
                             (unsigned long long)now, c, cand->tid());
            }
            // Context-switch penalty: virtualizing the region ID and
            // flushing the pipeline (§IV-C).
            core.applyContextSwitch(now, cfg_.ctxSwitchPenalty);
            break;
        }
    }
}

void
System::maybeEndWarmup()
{
    if (warmupDone_ || cfg_.warmupInsts == 0)
        return;
    std::uint64_t insts = 0;
    for (const auto &c : cores_)
        insts += c->instsRetired();
    if (insts < cfg_.warmupInsts)
        return;
    warmupDone_ = true;
    warmupCycles_ = sim_.now();
    for (auto &c : cores_)
        c->resetStats();
    for (auto &l1 : l1d_)
        l1->resetStats();
    l2_->resetStats();
    for (auto &mc : mcs_)
        mc->resetStats();
    staleLoads_ = 0;
    staleExtraMisses_ = 0;
}

/**
 * Advance the simulation until done() or cycle @p limit.
 *
 * Event engine: the wakeup heap names the next cycle at which any
 * component acts; the clock jumps straight there and executes only the
 * due components. Jumps are bounded by the next schedule check whenever
 * a core is oversubscribed (so context switches land on identical
 * cycles) and by @p limit. done(), warmup progress and scheduling
 * decisions are all pure functions of component state, which is frozen
 * across a skipped window — and every external mutation re-arms its
 * target — so results are bit-identical to the cycle engine (asserted
 * by test_engine).
 *
 * Cycle engine: the legacy loop, preserved verbatim in
 * advanceCycleStepped().
 */
bool
System::advance(Tick limit)
{
    if (cfg_.engine == SimEngine::Cycle)
        return advanceCycleStepped(limit);
    while (sim_.now() < limit) {
        if (done())
            return true;
        scheduleThreads(sim_.now());
        maybeEndWarmup();
        Tick target = std::min(sim_.nextEventTick(), limit);
        if (multiQueued_)
            target = std::min(target, nextScheduleCheck_);
        if (target > sim_.now()) {
            sim_.advanceTo(target);
            continue;
        }
        sim_.executeCycle();
        if (watchArmed_ && execMem_.read(watchAddr_) != watchFrom_) {
            watchServed_ = true;
            watchTick_ = sim_.now();
            return false;
        }
    }
    return false;
}

/**
 * The legacy cycle-stepped hot loop: tick everyone every cycle; when
 * every component self-reports quiescence until some future cycle
 * (linear nextActiveTick() rescan), the clock fast-forwards there
 * instead of stepping through dead cycles one by one.
 */
bool
System::advanceCycleStepped(Tick limit)
{
    while (sim_.now() < limit) {
        if (done())
            return true;
        scheduleThreads(sim_.now());
        maybeEndWarmup();
        if (cfg_.fastForwardEnabled) {
            Tick target = std::min(sim_.nextActiveTick(), limit);
            if (multiQueued_)
                target = std::min(target, nextScheduleCheck_);
            if (target > sim_.now() + 1) {
                sim_.advanceTo(target);
                continue;
            }
        }
        sim_.executeCycle();
        if (watchArmed_ && execMem_.read(watchAddr_) != watchFrom_) {
            watchServed_ = true;
            watchTick_ = sim_.now();
            return false;
        }
    }
    return false;
}

RunResult
System::run()
{
    if (advance(cfg_.maxCycles))
        return collectResult(true);
    warn("run() hit the cycle cap (possible live-lock)");
    return collectResult(false);
}

RunResult
System::runWithPowerFailure(Tick fail_at)
{
    if (advance(fail_at))
        return collectResult(true);
    executeCrashDrain(sim_.now());
    return collectResult(false);
}

RunResult
System::runWithDoubleFailureDuringDrain(Tick fail_at, unsigned drain_iters)
{
    return runWithFailureStorm(fail_at, {drain_iters});
}

RunResult
System::runWithFailureStorm(Tick fail_at,
                            const std::vector<unsigned> &drain_interrupts)
{
    if (advance(fail_at))
        return collectResult(true);
    // Each interrupted drain loses power after its iteration budget; the
    // battery-backed WPQ and MC registers survive, so the next drain
    // picks up exactly where the previous one stopped — the paper's
    // argument for why repeated failures are no worse than one.
    for (unsigned iters : drain_interrupts)
        executeCrashDrain(sim_.now(), static_cast<int>(iters));
    executeCrashDrain(sim_.now());
    return collectResult(false);
}

ServeProbe
System::runUntilWordChanges(Addr addr, std::uint64_t from)
{
    watchArmed_ = true;
    watchAddr_ = addr;
    watchFrom_ = from;
    watchServed_ = false;
    watchTick_ = 0;
    bool completed = advance(cfg_.maxCycles);
    watchArmed_ = false;
    ServeProbe probe;
    probe.served = watchServed_;
    probe.serveTick = watchTick_;
    probe.result = collectResult(completed);
    return probe;
}

void
System::executeCrashDrain(Tick now, int interrupt_after)
{
    // A completed drain is terminal: further storm failures against the
    // same dead machine change nothing (MCs are quiescent, faults were
    // injected, crashFinish() ran). Without this guard a re-entry would
    // re-run injectPostDrainFaults() and double-count media damage.
    if (drainFinished_)
        return;
    crashed_ = true;
    trace::emitIf<trace::Category::Power>(
        traceSink_.get(),
        {now, trace::EventType::PowerFailure, -1, 0, invalidRegion, 0, 0,
         interrupt_after >= 0 ? static_cast<std::uint64_t>(interrupt_after)
                              : 0});
    // Step 1: in-flight MC-to-MC ACKs are guaranteed delivery by the
    // MC-resident battery; everything on core persist paths dies.
    noc_.deliverAllNow(now);
    // Crash-time hardware faults land now, once — on a double failure
    // the second drain resumes against the already-damaged state.
    if (faultInjector_ && !crashFaultsInjected_) {
        crashFaultsInjected_ = true;
        injectCrashFaults(now);
    }
    // Steps 2-5: iterate flush/ACK exchange to quiescence.
    bool progress = true;
    int iters = 0;
    while (progress) {
        if (interrupt_after >= 0 && iters >= interrupt_after)
            return;  // power lost again mid-drain; no crashFinish()
        progress = false;
        for (auto &mc : mcs_)
            progress = mc->crashStep(now) || progress;
        noc_.deliverAllNow(now);
        ++iters;
    }
    // Step 6: discard unpersisted entries (rolling back any undo-logged
    // fallback overflow of a region that never became ready).
    drainFinished_ = true;
    for (auto &mc : mcs_)
        mc->crashFinish(now);
    // PM media faults (poison, silent flips) surface against the final
    // post-drain image: that is what recovery will read.
    if (faultInjector_) {
        injectPostDrainFaults(now);
        crashReport_.bcastRetries = faultInjector_->bcastRetries;
        crashReport_.bcastLostAtCrash = faultInjector_->bcastLostAtCrash;
    }
    trace::emitIf<trace::Category::Power>(
        traceSink_.get(),
        {now, trace::EventType::CrashDrainEnd, -1, 0, invalidRegion, 0, 0,
         static_cast<std::uint64_t>(iters)});
}

/**
 * Crash-time faults that live in the battery-backed hardware itself:
 * WPQ entry damage (bit flips / torn writes, optionally pinned to a
 * checkpoint-area entry) and MC drain stalls. Damage is ECC-detected,
 * so the drain computes a global corruption barrier — the lowest
 * damaged region across all MCs — and truncates there; if some MC has
 * already normally flushed (or committed) a region at/above the
 * barrier, truncation would leave a partial region in PM, and the image
 * is flagged detected-unrecoverable instead.
 */
void
System::injectCrashFaults(Tick now)
{
    fault::FaultInjector &inj = *faultInjector_;
    const fault::FaultConfig &fc = inj.config();
    crashReport_.faultsArmed = true;

    // --- WPQ entry damage -------------------------------------------------
    std::vector<int> kinds;  // 1 = bit flip, 2 = torn write
    if (fc.wpqBitFlip)
        kinds.push_back(1);
    if (fc.wpqTear)
        kinds.push_back(2);
    if (fc.ckptEntryDamage && kinds.empty())
        kinds.push_back(1);

    Addr ckpt_lo = program_.layout.base;
    Addr ckpt_hi = ckpt_lo + static_cast<Addr>(threads_.size()) *
                                 program_.layout.threadStride;
    for (int kind : kinds) {
        std::vector<std::pair<McId, std::size_t>> cands;
        for (McId m = 0; m < mcs_.size(); ++m) {
            mem::Wpq &w = mcs_[m]->wpqMutable();
            for (std::size_t i = 0; i < w.size(); ++i) {
                const mem::PersistEntry &e = w.entryAt(i);
                if (e.ecc != 0)
                    continue;  // one fault per entry
                bool in_ckpt = e.addr >= ckpt_lo && e.addr < ckpt_hi;
                if (!fc.ckptEntryDamage || in_ckpt)
                    cands.emplace_back(m, i);
            }
        }
        if (cands.empty())
            continue;  // nothing to damage (queue empty at this cycle)
        auto [m, i] = cands[inj.rng().below(cands.size())];
        mem::PersistEntry &e = mcs_[m]->wpqMutable().entryAt(i);
        if (kind == 2) {
            e.value &= 0xffff'ffffull;  // upper half of the granule lost
            e.ecc = 2;
        } else {
            e.value ^= 1ull << inj.rng().below(64);
            e.ecc = 1;
        }
        ++inj.wpqDamaged;
        ++crashReport_.wpqDamaged;
        trace::emitIf<trace::Category::Power>(
            traceSink_.get(),
            {now, trace::EventType::FaultInjected,
             static_cast<std::int32_t>(m), e.thread, e.region, e.addr,
             static_cast<std::uint64_t>(kind), i});
    }

    // --- Corruption barrier ----------------------------------------------
    RegionId barrier = invalidRegion;
    for (auto &mc : mcs_)
        barrier = std::min(barrier, mc->minDamagedRegion());
    if (barrier != invalidRegion) {
        bool hazard = false;
        for (auto &mc : mcs_)
            hazard = hazard || mc->truncationHazard(barrier);
        for (auto &mc : mcs_)
            mc->setCorruptBarrier(barrier, hazard);
        crashReport_.corruptBarrier = barrier;
        crashReport_.truncationHazard = hazard;
    }

    // --- MC stall during the drain ---------------------------------------
    if (fc.mcStallIters > 0) {
        McId m = static_cast<McId>(inj.rng().below(mcs_.size()));
        mcs_[m]->setCrashStall(fc.mcStallIters);
        inj.stallsInjected += fc.mcStallIters;
        crashReport_.stallsInjected += fc.mcStallIters;
        trace::emitIf<trace::Category::Power>(
            traceSink_.get(),
            {now, trace::EventType::FaultInjected,
             static_cast<std::int32_t>(m), 0, invalidRegion, 0, 3,
             fc.mcStallIters});
    }
}

/**
 * PM media faults surfacing at recovery time: poisoned (read-error)
 * words in the checkpoint area, and a silent bit flip in a persisted
 * register slot that only the hardened checkpoint checksum can catch.
 * Applied to the post-drain image — exactly what recovery reads.
 */
void
System::injectPostDrainFaults(Tick now)
{
    fault::FaultInjector &inj = *faultInjector_;
    const fault::FaultConfig &fc = inj.config();

    if (fc.pmPoisonWords > 0) {
        std::vector<Addr> cands;
        for (ThreadId t = 0; t < threads_.size(); ++t) {
            cands.push_back(program_.layout.pcSlot(t));
            for (ir::Reg r = 0; r < ir::numGprs; ++r)
                cands.push_back(program_.layout.regSlot(t, r));
        }
        for (unsigned k = 0; k < fc.pmPoisonWords && !cands.empty(); ++k) {
            std::size_t i = inj.rng().below(cands.size());
            Addr a = cands[i];
            cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(i));
            // The device lost the word: scramble the data, then flag it.
            pm_.write(a, pm_.read(a) ^ 0xdead'beef'0bad'c0deull);
            pm_.poison(a);
            ++inj.poisonedWords;
            ++crashReport_.poisonedWords;
            trace::emitIf<trace::Category::Power>(
                traceSink_.get(),
                {now, trace::EventType::FaultInjected, -1, 0,
                 invalidRegion, a, 4, 0});
        }
    }

    if (fc.silentCkptFlip) {
        std::vector<ThreadId> live;
        for (ThreadId t = 0; t < threads_.size(); ++t) {
            std::uint32_t site =
                cpu::ckptSiteOf(pm_.read(program_.layout.pcSlot(t)));
            if (site != static_cast<std::uint32_t>(noSiteSentinel) &&
                site != cpu::haltSite)
                live.push_back(t);
        }
        if (!live.empty()) {
            ThreadId t = live[inj.rng().below(live.size())];
            ir::Reg r =
                static_cast<ir::Reg>(inj.rng().below(ir::numGprs));
            Addr a = program_.layout.regSlot(t, r);
            pm_.write(a, pm_.read(a) ^ (1ull << inj.rng().below(64)));
            ++inj.silentFlips;
            ++crashReport_.silentFlips;
            trace::emitIf<trace::Category::Power>(
                traceSink_.get(),
                {now, trace::EventType::FaultInjected, -1, t,
                 invalidRegion, a, 5, r});
        }
    }
}

std::unique_ptr<System>
System::recover(const SystemConfig &cfg,
                const compiler::CompiledProgram &program,
                unsigned num_threads, const mem::MemImage &pm_state,
                const std::vector<Addr> &lock_addrs)
{
    auto sys = std::make_unique<System>(cfg, program, num_threads);

    // Adopt the post-crash PM image as both execution and PM state.
    sys->execMem_ = pm_state;
    sys->pm_ = pm_state;

    // Restart the dense region-ID sequence: the construction-time thread
    // resets consumed IDs that will never be broadcast, which would gate
    // the WPQs forever. Every ID allocated below belongs to a live
    // thread and is broadcast at its next boundary.
    sys->regionAlloc_ = cpu::RegionAllocator();

    // Reposition every thread at its latest persisted boundary. Under
    // the hardened checkpoint format the PC-slot word carries a checksum
    // in its upper half; the site id is always the low 32 bits (sentinel
    // words are stored raw and fit in 32 bits, so both formats agree).
    for (ThreadId t = 0; t < num_threads; ++t) {
        std::uint64_t word = pm_state.read(program.layout.pcSlot(t));
        std::uint64_t site =
            cfg.faults.hardenedCkpt
                ? static_cast<std::uint64_t>(cpu::ckptSiteOf(word))
                : word;
        cpu::ThreadContext &tc = *sys->threads_[t];
        if (site == noSiteSentinel) {
            tc.reset(0);  // no boundary persisted: restart from scratch
        } else if (site == cpu::haltSite) {
            tc.markHalted();
        } else {
            tc.recoverAt(static_cast<std::uint32_t>(site), pm_state);
        }
    }

    // Rebuild lock ownership from the persisted lock words: a nonzero
    // word means the owning thread resumed inside its critical section.
    for (Addr lock : lock_addrs) {
        std::uint64_t v = pm_state.read(lock);
        if (v != 0)
            sys->locks_.restore(lock, static_cast<ThreadId>(v - 1));
    }
    if (sys->traceSink_) {
        // The construction-time RegionBegin events described thread
        // positions that were just overwritten; restart the trace at
        // the recovered image.
        sys->traceSink_->clear();
        trace::emitIf<trace::Category::Power>(
            sys->traceSink_.get(),
            {0, trace::EventType::Recovery, -1, 0, invalidRegion, 0, 0,
             num_threads});
        for (ThreadId t = 0; t < num_threads; ++t) {
            if (sys->threads_[t]->halted())
                continue;
            trace::emitIf<trace::Category::Region>(
                sys->traceSink_.get(),
                {0, trace::EventType::RegionBegin,
                 static_cast<std::int32_t>(t % cfg.numCores), t,
                 sys->threads_[t]->currentRegion(), 0, 0, 0});
        }
    }
    sys->recovered_ = true;
    sys->failuresSurvived_ = 1;  // recoverChecked()/storms overwrite
    return sys;
}

RecoveryResult
System::recoverChecked(const SystemConfig &cfg,
                       const compiler::CompiledProgram &program,
                       unsigned num_threads,
                       const mem::MemImage &pm_state,
                       const std::vector<Addr> &lock_addrs,
                       const CrashReport *victim_report)
{
    RecoveryResult res;
    auto refuse = [&res](std::string why) {
        res.outcome = RecoveryOutcome::DetectedUnrecoverable;
        res.detail = std::move(why);
        res.sys.reset();
        return std::move(res);
    };

    // The crash drain's own findings come first: truncating the WPQ at
    // a corruption barrier after part of the barrier's epoch already
    // reached PM leaves a torn image no replay can repair.
    if (victim_report && victim_report->truncationHazard)
        return refuse("WPQ corruption barrier intersects flushed state");
    // Both a WPQ corruption barrier and broadcast copies lost at the
    // crash truncate the drain before the newest epoch: sound, but the
    // image is older than perfect hardware would have left.
    bool degraded = victim_report &&
                    (victim_report->corruptBarrier != invalidRegion ||
                     victim_report->bcastLostAtCrash > 0);

    const compiler::CheckpointLayout &layout = program.layout;
    for (ThreadId t = 0; t < num_threads; ++t) {
        Addr pc_slot = layout.pcSlot(t);
        if (pm_state.isPoisoned(pc_slot))
            return refuse("PM read error on thread " + std::to_string(t) +
                          " PC slot");
        std::uint64_t word = pm_state.read(pc_slot);
        std::uint32_t site = cpu::ckptSiteOf(word);
        if (site == static_cast<std::uint32_t>(noSiteSentinel) ||
            site == cpu::haltSite)
            continue;  // no checkpoint to validate
        if (site >= program.sites.size())
            return refuse("thread " + std::to_string(t) +
                          " PC slot names invalid boundary site " +
                          std::to_string(site));

        // A poisoned register slot is survivable only if this site's
        // pruning recipes reconstruct the register without reading it.
        bool any_poison = false;
        for (ir::Reg r = 0; r < ir::numGprs; ++r) {
            if (!pm_state.isPoisoned(layout.regSlot(t, r)))
                continue;
            any_poison = true;
            bool masked = false;
            for (const auto &recipe : program.site(site).recipes) {
                if (recipe.reg != r)
                    continue;
                if (recipe.kind == compiler::CkptRecipe::Kind::Const) {
                    masked = true;
                } else if (recipe.kind ==
                               compiler::CkptRecipe::Kind::AddSlot &&
                           recipe.src != r &&
                           !pm_state.isPoisoned(
                               layout.regSlot(t, recipe.src))) {
                    masked = true;
                }
                break;
            }
            if (!masked)
                return refuse("PM read error on thread " +
                              std::to_string(t) + " r" +
                              std::to_string(r) +
                              " checkpoint slot (no masking recipe)");
            ++res.maskedPoisonRegs;
        }

        // Hardened format: the checksum covers the raw slot words, so it
        // is only meaningful when every slot read back intact.
        if (cfg.faults.hardenedCkpt && !any_poison &&
            cpu::ckptSumOf(word) != cpu::ckptChecksum(pm_state, layout, t))
            return refuse("thread " + std::to_string(t) +
                          " register checkpoint checksum mismatch");
    }

    for (Addr lock : lock_addrs) {
        if (pm_state.isPoisoned(lock))
            return refuse("PM read error on lock word");
    }

    res.sys = recover(cfg, program, num_threads, pm_state, lock_addrs);
    degraded = degraded || res.maskedPoisonRegs > 0;
    res.outcome = degraded ? RecoveryOutcome::RecoveredDegraded
                           : RecoveryOutcome::Recovered;
    if (degraded)
        res.detail = "resumed from an older persisted epoch";
    // Default lineage: one failure survived. Storm orchestrators that
    // chain multiple crash/recover rounds overwrite the running total.
    res.sys->setRecoveryLineage(res.outcome, 1);
    trace::emitIf<trace::Category::Power>(
        res.sys->traceSink_.get(),
        {0, trace::EventType::RecoveryVerdict, -1, 0, invalidRegion, 0,
         static_cast<std::uint64_t>(res.outcome), res.maskedPoisonRegs});
    return res;
}

// ---- MemPort ---------------------------------------------------------------

Tick
System::loadLatency(CoreId core_id, Addr addr, Tick now)
{
    mem::Cache &l1 = *l1d_.at(core_id);
    Tick lat = l1.latency();
    auto r1 = l1.access(addr, false);
    if (r1.blocked) {
        // Zero-victim snoop conflict on the fill: wait out the front-end
        // buffer, then force the fill through.
        lat += cfg_.core.pathLatency + 2 * cfg_.mc.drainInterval;
        l1.setEvictionFilter(mem::VictimPolicy::None, nullptr);
        r1 = l1.access(addr, false);
        cpu::Core *core = cores_.at(core_id).get();
        l1.setEvictionFilter(cfg_.victimPolicy, [core](Addr line) {
            return !core->febContainsLine(line);
        });
    }
    if (r1.evictedDirty) {
        trace::emitIf<trace::Category::Cache>(
            traceSink_.get(),
            {now, trace::EventType::CacheWriteback,
             static_cast<std::int32_t>(core_id), 0, invalidRegion,
             r1.evictedLine, 0, 0});
    }
    if (r1.hit)
        return lat;

    lat += l2_->latency();
    auto r2 = l2_->access(addr, false);
    if (r2.evictedDirty) {
        trace::emitIf<trace::Category::Cache>(
            traceSink_.get(),
            {now, trace::EventType::CacheWriteback, -1, 0, invalidRegion,
             r2.evictedLine, 0, 0});
    }
    if (r2.hit)
        return lat;

    auto mc_res = mcs_.at(mcForAddr(addr))->serveLoadMiss(addr, now);
    lat += mc_res.latency;

    // Stale-load accounting (§IV-G, Fig. 6/14): without buffer snooping,
    // a fill whose line still has an unpersisted copy on some persist
    // path returns stale data and must be refetched once the store
    // lands — an extra miss and an extra PM round trip.
    if (cfg_.victimPolicy == mem::VictimPolicy::None &&
        schemeHasPersistPath(cfg_.scheme) && cfg_.mc.gatingEnabled) {
        Addr line = alignDown(addr, cachelineBytes);
        for (const auto &core : cores_) {
            if (core->febContainsLine(line)) {
                ++staleLoads_;
                ++staleExtraMisses_;
                lat += cfg_.mc.pmReadCycles;
                break;
            }
        }
    }
    return lat;
}

bool
System::storeAccess(CoreId core_id, Addr addr, Tick now)
{
    auto res = l1d_.at(core_id)->access(addr, true);
    if (res.blocked)
        return false;
    if (res.evictedDirty) {
        trace::emitIf<trace::Category::Cache>(
            traceSink_.get(),
            {now, trace::EventType::CacheWriteback,
             static_cast<std::int32_t>(core_id), 0, invalidRegion,
             res.evictedLine, 0, 0});
    }
    // Ideal PSP runs PM as main memory: store lines that miss the cache
    // hierarchy reach the PM device directly and steal read bandwidth —
    // the write-interference half of forfeiting the DRAM cache.
    if (cfg_.scheme == Scheme::PspIdeal && !res.hit)
        mcs_.at(mcForAddr(addr))->pmWriteTraffic(now);
    return true;
}

bool
System::tryPersistAccept(const mem::PersistEntry &e, Tick now)
{
    mem::MemController &mc = *mcs_.at(mcForAddr(e.addr));
    if (!mc.canAccept(e))
        return false;
    mc.accept(e, now);
    return true;
}

void
System::broadcastBoundary(RegionId region, Tick now)
{
    noc_.broadcastBoundary(region, now);
}

bool
System::regionDurable(CoreId core_id, RegionId region)
{
    // With the WPQ running as a plain FIFO (ungated schemes), region
    // durability reduces to this core's persists having drained.
    if (!cfg_.mc.gatingEnabled)
        return persistsDrained(core_id);
    const cpu::Core &core = *cores_.at(core_id);
    if (!core.febEmpty() && core.febMinRegion() <= region)
        return false;
    for (const auto &mc : mcs_) {
        if (mc->drainCursor() <= region)
            return false;
    }
    return true;
}

bool
System::persistsDrained(CoreId core_id)
{
    const cpu::Core &core = *cores_.at(core_id);
    if (!core.febEmpty())
        return false;
    cpu::ThreadContext *t = cores_.at(core_id)->thread();
    if (t == nullptr)
        return true;
    ThreadId tid = t->tid();
    for (const auto &mc : mcs_) {
        bool found = false;
        mc->wpq().forEach([&](const mem::PersistEntry &e) {
            found = found || e.thread == tid;
        });
        if (found)
            return false;
    }
    return true;
}

void
System::dumpStats(std::ostream &os) const
{
    auto line = [&](const std::string &name, const std::string &stat,
                    double v) { os << name << '.' << stat << ' ' << v
                                   << '\n'; };
    for (const auto &c : cores_) {
        line(c->name(), "instsRetired",
             static_cast<double>(c->instsRetired()));
        line(c->name(), "storesRetired",
             static_cast<double>(c->storesRetired()));
        line(c->name(), "boundariesRetired",
             static_cast<double>(c->boundariesRetired()));
        line(c->name(), "sbFullCycles",
             static_cast<double>(c->sbFullCycles()));
        line(c->name(), "febFullCycles",
             static_cast<double>(c->febFullCycles()));
        line(c->name(), "boundaryWaitCycles",
             static_cast<double>(c->boundaryWaitCycles()));
        line(c->name(), "lockBlockedCycles",
             static_cast<double>(c->lockBlockedCycles()));
        line(c->name(), "branchMisses",
             static_cast<double>(c->branchMisses()));
        line(c->name(), "regionInsts.mean",
             c->regionInsts().summary().mean());
        line(c->name(), "regionStores.mean",
             c->regionStores().summary().mean());
    }
    for (const auto &l1 : l1d_) {
        line(l1->name(), "hits", static_cast<double>(l1->hits()));
        line(l1->name(), "misses", static_cast<double>(l1->misses()));
        line(l1->name(), "bufferConflicts",
             static_cast<double>(l1->bufferConflicts()));
    }
    line(l2_->name(), "hits", static_cast<double>(l2_->hits()));
    line(l2_->name(), "misses", static_cast<double>(l2_->misses()));
    for (const auto &mc : mcs_) {
        line(mc->name(), "flushedEntries",
             static_cast<double>(mc->flushedEntries()));
        line(mc->name(), "fallbackFlushes",
             static_cast<double>(mc->fallbackFlushes()));
        line(mc->name(), "wpqLoadHits",
             static_cast<double>(mc->wpqLoadHits()));
        line(mc->name(), "regionsCommitted",
             static_cast<double>(mc->regionsCommitted()));
        line(mc->name(), "flushId",
             static_cast<double>(mc->flushId()));
    }
    line(noc_.name(), "messagesSent",
         static_cast<double>(noc_.messagesSent()));
    line(noc_.name(), "boundariesBroadcast",
         static_cast<double>(noc_.boundariesBroadcast()));
}

void
System::registerStats(stats::Registry &registry) const
{
    auto fn = [](auto getter) {
        return [getter] { return static_cast<double>(getter()); };
    };

    for (const auto &cp : cores_) {
        const cpu::Core *c = cp.get();
        stats::StatGroup &g = registry.group(c->name());
        g.addFunc("instsRetired", fn([c] { return c->instsRetired(); }),
                  "instructions retired");
        g.addFunc("storesRetired", fn([c] { return c->storesRetired(); }),
                  "stores retired");
        g.addFunc("boundariesRetired",
                  fn([c] { return c->boundariesRetired(); }),
                  "region boundaries retired");
        g.addFunc("robFullCycles", fn([c] { return c->robFullCycles(); }),
                  "cycles dispatch stalled on a full ROB");
        g.addFunc("sbFullCycles", fn([c] { return c->sbFullCycles(); }),
                  "cycles retirement stalled on a full store buffer");
        g.addFunc("febFullCycles", fn([c] { return c->febFullCycles(); }),
                  "cycles the SB stalled on a full front-end buffer");
        g.addFunc("boundaryWaitCycles",
                  fn([c] { return c->boundaryWaitCycles(); }),
                  "cycles stalled waiting for region durability");
        g.addFunc("lockBlockedCycles",
                  fn([c] { return c->lockBlockedCycles(); }),
                  "cycles blocked on a contended lock");
        g.addFunc("pathBlockedCycles",
                  fn([c] { return c->pathBlockedCycles(); }),
                  "cycles persist-path egress was refused by the WPQ");
        g.addFunc("snoopBlockedCycles",
                  fn([c] { return c->snoopBlockedCycles(); }),
                  "cycles the SB head hit a zero-victim snoop conflict");
        g.addFunc("branchMisses", fn([c] { return c->branchMisses(); }),
                  "branch mispredictions");
        g.addDistribution("regionInsts", &c->regionInsts(),
                          "dynamic instructions per region");
        g.addDistribution("regionStores", &c->regionStores(),
                          "stores per region");
    }

    auto cacheStats = [&](const mem::Cache *cache) {
        stats::StatGroup &g = registry.group(cache->name());
        g.addFunc("hits", fn([cache] { return cache->hits(); }), "hits");
        g.addFunc("misses", fn([cache] { return cache->misses(); }),
                  "misses");
        g.addFunc("bufferConflicts",
                  fn([cache] { return cache->bufferConflicts(); }),
                  "dirty evictions vetoed by buffer snooping");
        g.addFunc("divertedVictims",
                  fn([cache] { return cache->divertedVictims(); }),
                  "LRU victims diverted to a clean way");
    };
    for (const auto &l1 : l1d_)
        cacheStats(l1.get());
    cacheStats(l2_.get());

    for (const auto &mp : mcs_) {
        const mem::MemController *mc = mp.get();
        stats::StatGroup &g = registry.group(mc->name());
        g.addFunc("flushedEntries",
                  fn([mc] { return mc->flushedEntries(); }),
                  "WPQ entries released to PM");
        g.addFunc("fallbackFlushes",
                  fn([mc] { return mc->fallbackFlushes(); }),
                  "undo-logged out-of-order releases (deadlock fallback)");
        g.addFunc("overflowEvents",
                  fn([mc] { return mc->overflowEvents(); }),
                  "soft WPQ overflows during fallback");
        g.addFunc("wpqLoadHits", fn([mc] { return mc->wpqLoadHits(); }),
                  "LLC-miss loads served from the WPQ CAM");
        g.addFunc("loadMisses", fn([mc] { return mc->loadMisses(); }),
                  "LLC misses served by this controller");
        g.addFunc("regionsCommitted",
                  fn([mc] { return mc->regionsCommitted(); }),
                  "regions whose flush-ACK round completed");
        g.addFunc("flushId", fn([mc] { return mc->flushId(); }),
                  "persistent flush-ID register (committed prefix + 1)");
        g.addFunc("maxWpqOccupancy",
                  fn([mc] { return mc->maxWpqOccupancy(); }),
                  "peak WPQ occupancy");
        g.addDistribution("wpqOccupancy", &mc->wpqOccupancy(),
                          "WPQ occupancy at enqueue");
        g.addDistribution("bcastLatency", &mc->bcastLatency(),
                          "boundary arrival to full bdry-ACK round, "
                          "cycles");
        cacheStats(&const_cast<mem::MemController *>(mc)->dramCache());

        const mem::Wpq *wpq = &mc->wpq();
        stats::StatGroup &wg = registry.group(mc->name() + ".wpq");
        wg.addFunc("pushes", fn([wpq] { return wpq->pushes(); }),
                   "entries enqueued");
        wg.addFunc("pops", fn([wpq] { return wpq->pops(); }),
                   "entries dequeued");
        wg.addFunc("searches", fn([wpq] { return wpq->searches(); }),
                   "CAM searches");
        wg.addFunc("searchHits", fn([wpq] { return wpq->searchHits(); }),
                   "CAM search hits");
    }

    stats::StatGroup &ng = registry.group(noc_.name());
    const noc::Noc *noc = &noc_;
    ng.addFunc("messagesSent", fn([noc] { return noc->messagesSent(); }),
               "control-plane messages sent");
    ng.addFunc("boundariesBroadcast",
               fn([noc] { return noc->boundariesBroadcast(); }),
               "boundary broadcasts");

    stats::StatGroup &sg = registry.group("system");
    sg.addFunc("cycles", fn([this] { return now() - warmupCycles_; }),
               "simulated cycles (post-warmup)");
    sg.addFunc("staleLoads", fn([this] { return staleLoads_; }),
               "loads that returned stale data (no buffer snooping)");
    sg.addFunc("crashed", fn([this] { return crashed_ ? 1 : 0; }),
               "1 if the crash-drain protocol executed");
    sg.addFunc("traceEvents", fn([this] {
                   return traceSink_ ? traceSink_->emitted() : 0;
               }),
               "telemetry events accepted by the sink");
    sg.addFunc("recoveryOutcome", fn([this] {
                   return recovered_
                       ? 1 + static_cast<std::uint64_t>(bootOutcome_)
                       : 0;
               }),
               "0 fresh boot, 1 recovered, 2 degraded, 3 unrecoverable");
    sg.addFunc("failuresSurvived",
               fn([this] { return failuresSurvived_; }),
               "power failures survived by the recovered state");
}

RunResult
System::collectResult(bool completed)
{
    RunResult r;
    r.cycles = sim_.now() - warmupCycles_;
    r.completed = completed;

    double region_insts_sum = 0, region_stores_sum = 0;
    std::uint64_t region_count = 0;
    for (const auto &c : cores_) {
        r.instsRetired += c->instsRetired();
        r.storesRetired += c->storesRetired();
        r.boundaries += c->boundariesRetired();
        r.boundaryWaitCycles += c->boundaryWaitCycles();
        r.sbFullCycles += c->sbFullCycles();
        r.febFullCycles += c->febFullCycles();
        r.snoopBlockedCycles += c->snoopBlockedCycles();
        r.lockBlockedCycles += c->lockBlockedCycles();
        region_insts_sum += c->regionInsts().summary().sum();
        region_stores_sum += c->regionStores().summary().sum();
        region_count += c->regionInsts().summary().count();
    }
    for (const auto &l1 : l1d_) {
        r.l1Hits += l1->hits();
        r.l1Misses += l1->misses();
        r.bufferConflicts += l1->bufferConflicts();
        r.divertedVictims += l1->divertedVictims();
    }
    r.l1Misses += staleExtraMisses_;
    r.staleLoads = staleLoads_;
    double bcast_sum = 0;
    std::uint64_t bcast_count = 0;
    for (const auto &mc : mcs_) {
        r.wpqLoadHits += mc->wpqLoadHits();
        r.wpqFlushedEntries += mc->flushedEntries();
        r.wpqFallbackFlushes += mc->fallbackFlushes();
        r.wpqOverflowEvents += mc->overflowEvents();
        r.maxWpqOccupancy =
            std::max(r.maxWpqOccupancy, mc->maxWpqOccupancy());
        r.regionsCommitted =
            std::max(r.regionsCommitted, mc->regionsCommitted());
        const auto &bl = mc->bcastLatency().summary();
        bcast_sum += bl.sum();
        bcast_count += bl.count();
        r.bcastLatencyMax = std::max(r.bcastLatencyMax, bl.max());
    }
    r.nocMessages = noc_.messagesSent();
    r.bcastRetries = noc_.bcastRetries();
    if (bcast_count > 0)
        r.bcastLatencyAvg = bcast_sum / static_cast<double>(bcast_count);
    r.ipc = r.cycles ? static_cast<double>(r.instsRetired) / r.cycles : 0;
    if (region_count > 0) {
        r.avgRegionInsts = region_insts_sum / region_count;
        r.avgRegionStores = region_stores_sum / region_count;
    }
    return r;
}

} // namespace core
} // namespace lwsp
