/**
 * @file
 * Whole-system configuration (paper Table I) and the persistence schemes
 * evaluated against each other in §V.
 *
 * Note on scaling: the paper fast-forwards 10B instructions in gem5 and
 * simulates 5B more; our workloads run 10^5-10^6 instructions end to end,
 * so cache capacities are scaled down ~64x (L2 16MB -> 256KB, DRAM cache
 * 4GB -> 8MB) to keep the hierarchy's hit-rate structure — L1-resident
 * vs L2-resident vs DRAM-cache-resident vs PM-bound — at the reduced
 * footprints. Latencies are Table I values converted to 2 GHz cycles.
 */

#ifndef LWSP_CORE_SYSTEM_CONFIG_HH
#define LWSP_CORE_SYSTEM_CONFIG_HH

#include "compiler/config.hh"
#include "cpu/core.hh"
#include "fault/fault.hh"
#include "mem/cache.hh"
#include "mem/mem_controller.hh"
#include "noc/topology.hh"
#include "sim/simulator.hh"
#include "trace/events.hh"

namespace lwsp {
namespace core {

/** The persistence designs compared in the paper's evaluation. */
enum class Scheme : std::uint8_t
{
    Baseline,    ///< Optane memory mode, original binary, no persistence
    PspIdeal,    ///< ideal PSP (BBB/eADR-class): persistence free, no DRAM$
    LightWsp,    ///< this paper
    NaiveSfence, ///< LightWSP regions with a stall at every boundary
    Ppa,         ///< persistent processor architecture (MICRO'23)
    Capri,       ///< compiler/arch WSP with L1-connected persist path
    Cwsp,        ///< compiler-directed WSP with MC speculation (ISCA'24)
};

const char *schemeName(Scheme s);

/** @return true if @p s runs the boundary/checkpoint-compiled binary. */
constexpr bool
schemeUsesCompiledBinary(Scheme s)
{
    return s == Scheme::LightWsp || s == Scheme::NaiveSfence ||
           s == Scheme::Cwsp;
}

/** @return true if stores travel a persist path in scheme @p s. */
constexpr bool
schemeHasPersistPath(Scheme s)
{
    return s != Scheme::Baseline && s != Scheme::PspIdeal;
}

struct SystemConfig
{
    Scheme scheme = Scheme::LightWsp;
    unsigned numCores = 8;

    cpu::CoreConfig core;                     ///< Table I pipeline widths
    mem::CacheConfig l1d{64 * 1024, 8, 4};    ///< 64KB/core, 8-way, 4 cyc
    mem::CacheConfig l2{256 * 1024, 16, 44};  ///< shared (scaled), 44 cyc
    mem::McConfig mc;                         ///< WPQ/PM/DRAM-cache knobs
    unsigned numMcs = 2;
    Tick nocHopLatency = 20;                  ///< 10 ns MC<->MC / router hop

    /**
     * Control-plane fabric: flat router fan-out + all-to-all ACKs (the
     * paper's 2-iMC machine, default) or a radix-r aggregation tree
     * whose per-region message count is O(MCs) instead of O(MCs^2) —
     * see noc/topology.hh. Ignored (degrades to flat) with one MC.
     */
    noc::TopologyConfig topology;

    /**
     * How physical lines shard across MCs. LineInterleave (default):
     * consecutive cachelines round-robin across controllers —
     * `(addr / 64) % numMcs`, valid for any MC count including
     * non-powers-of-two (the modulo simply yields unequal-but-complete
     * coverage when the address stream is structured). HashShard:
     * a Fibonacci multiply-shift hash of the line number decorrelates
     * strided access patterns from the controller index at
     * non-power-of-two counts.
     */
    enum class ShardPolicy : std::uint8_t { LineInterleave, HashShard };
    ShardPolicy shardPolicy = ShardPolicy::LineInterleave;

    mem::VictimPolicy victimPolicy = mem::VictimPolicy::Full;

    /** Round-robin quantum + pipeline-flush penalty (threads > cores). */
    Tick ctxQuantum = 20000;
    Tick ctxSwitchPenalty = 400;

    /** cWSP model: per-PM-write undo-logging slowdown factor (§II-C). */
    double cwspDrainFactor = 1.5;

    std::uint64_t seed = 12345;

    /** Ceiling for run(); trips the runaway guard when exceeded. */
    Tick maxCycles = 100'000'000;

    /**
     * Clock driver. Event (default): discrete-event wakeup heap — idle
     * components cost nothing per skipped cycle. Cycle: the legacy
     * tick-everyone loop, kept selectable as the bit-identical ground
     * truth for A/B verification (asserted by test_engine).
     */
    SimEngine engine = SimEngine::Event;

    /**
     * Event engine debug cross-check: assert at every scheduling
     * decision that the wakeup heap's minimum is never later than the
     * full linear rescan over all components (a late key is a missed
     * event — somebody changed state without rearm(); an early key is
     * only a spurious no-op wakeup and is legal). Also enabled by
     * LWSP_VERIFY_WAKEUPS=1 in the environment — the LWSP_VERIFY_EACH
     * of the scheduler.
     */
    bool verifyWakeups = false;

    /**
     * Cycle engine only: fast-forward the clock across cycles in which
     * every component self-reports quiescence (Clocked::nextActiveTick).
     * Results are bit-identical with it on or off (asserted by
     * test_sweep); the switch exists for A/B verification and as a kill
     * switch. The event engine supersedes it (per-component skipping)
     * and ignores this flag.
     */
    bool fastForwardEnabled = true;

    /**
     * Retired-instruction count after which all statistics reset and the
     * cycle baseline restarts — stands in for the paper's 10B-instruction
     * fast-forward that warms the DRAM cache before measurement.
     */
    std::uint64_t warmupInsts = 0;

    /**
     * Compile the LRPO invariant oracles into this system: every MC
     * reports protocol events to a System-owned mem::LrpoOracle that
     * checks release ordering, WPQ occupancy and post-crash PM age every
     * cycle (see mem/oracle.hh). Off by default — the hooks are
     * null-pointer checks and the timing model is unchanged either way.
     */
    bool oraclesEnabled = false;

    /**
     * Compile the telemetry subsystem into this system: the System owns
     * a trace::TraceSink and every component (cores, MCs, caches, the
     * scheduler, the crash-drain engine) emits typed events to it. Off
     * by default — the hook sites are null-pointer checks and cycle
     * counts are bit-identical either way (asserted by test_trace).
     */
    bool traceEnabled = false;

    /** Run-time category filter for the sink (bit-or of Category). */
    std::uint32_t traceMask = trace::allCategories;

    /** Ring-buffer capacity in events (oldest overwritten on wrap). */
    std::size_t traceBufferEvents = 1u << 16;

    /**
     * Hardware fault injection (see fault/fault.hh). Disabled by
     * default: no FaultInjector is created, every hook stays a null
     * pointer and results are bit-identical to a faultless build. With
     * `faults.enabled` but every axis at its default, the machine runs
     * the hardened protocol paths (broadcast ack/retry bookkeeping) with
     * timing still bit-identical — asserted by test_fault.
     */
    fault::FaultConfig faults;

    /**
     * Derive the per-scheme core/MC settings. Call once after setting the
     * scheme and any explicit overrides.
     */
    void
    applySchemeDefaults()
    {
        mc.numMcs = numMcs;
        mc.treeAcks = topology.isTree() && numMcs > 1;
        core.persistPathEnabled = schemeHasPersistPath(scheme);
        switch (scheme) {
          case Scheme::Baseline:
            mc.gatingEnabled = false;
            victimPolicy = mem::VictimPolicy::None;
            break;
          case Scheme::PspIdeal:
            mc.gatingEnabled = false;
            mc.dramCacheEnabled = false;
            victimPolicy = mem::VictimPolicy::None;
            break;
          case Scheme::LightWsp:
            mc.gatingEnabled = true;
            core.boundaryPolicy = cpu::CoreConfig::BoundaryPolicy::Lazy;
            break;
          case Scheme::NaiveSfence:
            // The blocking barrier at every boundary already enforces
            // region order, so the WPQ drains as a plain FIFO — gating
            // it on top would couple independent threads through the
            // global region sequence and livelock the ablation.
            mc.gatingEnabled = false;
            core.boundaryPolicy =
                cpu::CoreConfig::BoundaryPolicy::StallUntilDurable;
            break;
          case Scheme::Ppa:
            mc.gatingEnabled = false;  // eager write-back persistence
            core.boundaryPolicy =
                cpu::CoreConfig::BoundaryPolicy::HwImplicit;
            victimPolicy = mem::VictimPolicy::None;
            break;
          case Scheme::Capri:
            mc.gatingEnabled = false;
            core.boundaryPolicy =
                cpu::CoreConfig::BoundaryPolicy::HwImplicit;
            core.trafficAmplification = 8.0;  // 64B flush per 8B store
            // The 64B granularity also multiplies PM write traffic at
            // the buffers' drain (partially absorbed by PM-internal
            // line batching).
            mc.drainInterval = mc.drainInterval * 4;
            victimPolicy = mem::VictimPolicy::None;
            break;
          case Scheme::Cwsp:
            mc.gatingEnabled = false;  // MC speculation: no persist waits
            core.boundaryPolicy = cpu::CoreConfig::BoundaryPolicy::Lazy;
            // Undo logging adds a (mitigated) read-modify overhead to
            // every PM write: model as a drain-bandwidth derating
            // (2 entries per 3 cycles vs LightWSP's 1 per cycle).
            mc.drainInterval = mc.drainInterval * 3;
            mc.drainBurst = mc.drainBurst * 2;
            break;
        }
        core.rngSeed = seed;
    }
};

} // namespace core
} // namespace lwsp

#endif // LWSP_CORE_SYSTEM_CONFIG_HH
