/**
 * @file
 * The LightWSP system: cores, caches, persist paths, memory controllers
 * and the recovery engine, wired per the configured persistence scheme.
 *
 * The system maintains two functional images: the execution image (what
 * loads observe, updated at dispatch) and the PM image (updated only when
 * a WPQ releases an entry), so at any crash cycle the PM image is exactly
 * what battery-backed hardware would leave behind. powerFailure() runs the
 * paper's §IV-F drain protocol; recover() builds a successor system from
 * the post-crash PM image with every thread repositioned at its latest
 * persisted boundary.
 */

#ifndef LWSP_CORE_SYSTEM_HH
#define LWSP_CORE_SYSTEM_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "cpu/core.hh"
#include "cpu/lock_table.hh"
#include "cpu/thread_context.hh"
#include "mem/mem_controller.hh"
#include "mem/mem_image.hh"
#include "mem/oracle.hh"
#include "noc/noc.hh"
#include "sim/simulator.hh"
#include "trace/sink.hh"

namespace lwsp {
namespace core {

/** PC-slot sentinel: thread has not yet persisted any boundary. */
constexpr std::uint64_t noSiteSentinel = 0xffff'fffeull;

/**
 * Classification of a recovery attempt (fault-hardening contract):
 * every injected fault is either masked (Recovered), survived by
 * falling back to an older persisted epoch (RecoveredDegraded), or
 * reported (DetectedUnrecoverable) — never silent corruption.
 */
enum class RecoveryOutcome : std::uint8_t
{
    Recovered,              ///< full recovery at the newest epoch
    RecoveredDegraded,      ///< sound recovery at an older epoch
    DetectedUnrecoverable,  ///< PM image damaged beyond sound recovery
};

const char *recoveryOutcomeName(RecoveryOutcome o);

/**
 * What the §IV-F crash drain observed and did about injected hardware
 * faults. All-default when fault injection is off.
 */
struct CrashReport
{
    bool faultsArmed = false;
    /** Drain truncated before this region (WPQ ECC damage), if any. */
    RegionId corruptBarrier = invalidRegion;
    /** Truncation would lose already-persisted writes: refuse recovery. */
    bool truncationHazard = false;
    unsigned wpqDamaged = 0;
    unsigned poisonedWords = 0;
    unsigned silentFlips = 0;
    unsigned stallsInjected = 0;
    std::uint64_t bcastRetries = 0;
    std::uint64_t bcastLostAtCrash = 0;
};

/** Result of System::recoverChecked(). */
struct RecoveryResult
{
    /** The recovered system; null iff outcome is DetectedUnrecoverable. */
    std::unique_ptr<class System> sys;
    RecoveryOutcome outcome = RecoveryOutcome::Recovered;
    std::string detail;          ///< human-readable classification reason
    unsigned maskedPoisonRegs = 0;  ///< poisoned slots recipes masked
};

/** Aggregated outcome of one run (normalized by the harness). */
struct RunResult
{
    Tick cycles = 0;
    bool completed = false;      ///< false: cycle limit or power failure
    std::uint64_t instsRetired = 0;
    std::uint64_t storesRetired = 0;
    std::uint64_t boundaries = 0;
    double ipc = 0.0;

    // Stall accounting (persistence-efficiency inputs, Eq. 1).
    std::uint64_t boundaryWaitCycles = 0;
    std::uint64_t sbFullCycles = 0;
    std::uint64_t febFullCycles = 0;
    std::uint64_t snoopBlockedCycles = 0;
    std::uint64_t lockBlockedCycles = 0;

    // Memory-system behaviour.
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t staleLoads = 0;
    std::uint64_t bufferConflicts = 0;
    std::uint64_t divertedVictims = 0;
    std::uint64_t wpqLoadHits = 0;
    std::uint64_t wpqFlushedEntries = 0;
    std::uint64_t wpqFallbackFlushes = 0;
    std::uint64_t wpqOverflowEvents = 0;
    std::size_t maxWpqOccupancy = 0;
    std::uint64_t regionsCommitted = 0;

    // Control-plane behaviour (fig23 scale-out inputs).
    std::uint64_t nocMessages = 0;      ///< control messages on the fabric
    std::uint64_t bcastRetries = 0;     ///< router retry rounds (faults)
    double bcastLatencyAvg = 0.0;       ///< boundary arrival -> full ACK
    double bcastLatencyMax = 0.0;       ///< worst region's ACK round

    double avgRegionInsts = 0.0;
    double avgRegionStores = 0.0;

    double l1MissRate() const
    {
        std::uint64_t t = l1Hits + l1Misses;
        return t ? static_cast<double>(l1Misses) / t : 0.0;
    }
};

/**
 * Result of System::runUntilWordChanges(): used by the recovery-latency
 * benchmark (fig20) to time "power-on to first served operation".
 */
struct ServeProbe
{
    bool served = false;   ///< the watched word changed before the run ended
    Tick serveTick = 0;    ///< cycle at which the change became visible
    RunResult result;      ///< run outcome up to the stop point
};

class System : public cpu::MemPort
{
  public:
    /**
     * @param cfg scheme-applied configuration
     * @param program the binary to run (compiled or original per scheme)
     * @param num_threads software threads; all start at function 0 with
     *        r0 = thread id
     */
    System(const SystemConfig &cfg,
           const compiler::CompiledProgram &program, unsigned num_threads);

    /** Run to completion (or the config's cycle cap). */
    RunResult run();

    /**
     * Run until cycle @p fail_at, then execute the power-failure drain
     * protocol. If the program finishes earlier, returns the normal
     * result and performs no crash.
     *
     * @return the run result up to the failure point
     */
    RunResult runWithPowerFailure(Tick fail_at);

    /**
     * Like runWithPowerFailure(), but a second power failure interrupts
     * the §IV-F drain protocol after @p drain_iters quiescence
     * iterations. The WPQ and MC protocol registers are battery-backed,
     * so the drain simply resumes from where it stopped — the paper's
     * argument for why repeated failures are no worse than one. The
     * interrupted progress must therefore be invisible: recovery matches
     * a single-failure run at the same cycle.
     */
    RunResult runWithDoubleFailureDuringDrain(Tick fail_at,
                                              unsigned drain_iters);

    /**
     * Failure-storm drain: run until cycle @p fail_at, then execute the
     * §IV-F drain protocol with power failing again after each entry of
     * @p drain_interrupts quiescence iterations (in order), and once
     * more to completion after the last. Battery-backed WPQ and MC
     * protocol registers survive every interruption, so each re-entered
     * drain resumes where the previous one stopped; crashFinish() runs
     * exactly once no matter how the drain loop was sliced. An empty
     * vector is exactly runWithPowerFailure(fail_at).
     */
    RunResult runWithFailureStorm(Tick fail_at,
                                  const std::vector<unsigned>
                                      &drain_interrupts);

    /**
     * Run until the execution-image word at @p addr holds a value other
     * than @p from (or until completion / the cycle cap). The check sits
     * after every executed cycle, so the reported tick is the first
     * cycle boundary at which the new value is architecturally visible.
     * Used to measure recovery latency as "power-on to first served
     * operation": recover(), read the op counter, then watch it move.
     */
    ServeProbe runUntilWordChanges(Addr addr, std::uint64_t from);

    /** @return true if the drain protocol actually executed. */
    bool crashed() const { return crashed_; }

    /** Invariant oracle (null unless cfg.oraclesEnabled). */
    mem::LrpoOracle *oracle() { return oracle_.get(); }
    const mem::LrpoOracle *oracle() const { return oracle_.get(); }

    /** Telemetry sink (null unless cfg.traceEnabled). */
    trace::TraceSink *traceSink() { return traceSink_.get(); }
    const trace::TraceSink *traceSink() const { return traceSink_.get(); }

    /** Post-crash (or final) persistent-memory state. */
    const mem::MemImage &pmImage() const { return pm_; }

    /** Execution-image view (golden final memory on clean completion). */
    const mem::MemImage &execImage() const { return execMem_; }

    /**
     * Build a successor system resuming from @p pm_state: each thread is
     * repositioned via its PC slot, registers restored from checkpoint
     * slots (+ recipes), and lock ownership rebuilt from the lock words
     * listed in @p lock_addrs.
     */
    static std::unique_ptr<System>
    recover(const SystemConfig &cfg,
            const compiler::CompiledProgram &program,
            unsigned num_threads, const mem::MemImage &pm_state,
            const std::vector<Addr> &lock_addrs);

    /**
     * Hardened recovery: validate @p pm_state before building the
     * successor — poisoned PC slots, poisoned register slots no pruning
     * recipe can mask, poisoned lock words and (under the hardened
     * checkpoint format) register-checkpoint checksum mismatches all
     * classify the image DetectedUnrecoverable instead of resuming on
     * garbage. A victim's @p victim_report (when given) folds the crash
     * drain's own findings in: a truncation hazard is unrecoverable, a
     * clean corruption barrier degrades to the older epoch.
     */
    static RecoveryResult
    recoverChecked(const SystemConfig &cfg,
                   const compiler::CompiledProgram &program,
                   unsigned num_threads, const mem::MemImage &pm_state,
                   const std::vector<Addr> &lock_addrs,
                   const CrashReport *victim_report = nullptr);

    /** What the crash drain saw of injected faults (all-default if none). */
    const CrashReport &crashReport() const { return crashReport_; }

    // ---- Recovery lineage --------------------------------------------------
    // A system built by recover()/recoverChecked() carries how it came to
    // be: its boot classification and how many power failures the state
    // it resumed from has survived so far. Storm orchestrators overwrite
    // the count as the storm unfolds; reports and --stats-json read it.

    /** True iff this system was built by recover()/recoverChecked(). */
    bool recovered() const { return recovered_; }

    /** Boot classification (Recovered unless set by recoverChecked()). */
    RecoveryOutcome bootOutcome() const { return bootOutcome_; }

    /** Power failures survived by the state this system resumed from. */
    unsigned failuresSurvived() const { return failuresSurvived_; }

    /** Stamp the lineage (recoverChecked() and storm orchestrators). */
    void setRecoveryLineage(RecoveryOutcome outcome, unsigned failures)
    {
        recovered_ = true;
        bootOutcome_ = outcome;
        failuresSurvived_ = failures;
    }

    /** Fault injector (null unless cfg.faults.enabled). */
    fault::FaultInjector *faultInjector() { return faultInjector_.get(); }

    // ---- MemPort ----------------------------------------------------------
    Tick loadLatency(CoreId core_id, Addr addr, Tick now) override;
    bool storeAccess(CoreId core_id, Addr addr, Tick now) override;
    bool tryPersistAccept(const mem::PersistEntry &e, Tick now) override;
    void broadcastBoundary(RegionId region, Tick now) override;
    bool regionDurable(CoreId core_id, RegionId region) override;
    bool persistsDrained(CoreId core_id) override;

    // ---- Introspection ----------------------------------------------------
    cpu::Core &coreAt(CoreId i) { return *cores_.at(i); }
    mem::MemController &mcAt(McId i) { return *mcs_.at(i); }
    cpu::ThreadContext &threadAt(ThreadId t) { return *threads_.at(t); }
    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }
    Tick now() const { return sim_.now(); }
    const SystemConfig &config() const { return cfg_; }
    noc::Noc &nocNet() { return noc_; }

    /** MC owning @p addr (cacheline interleaving). */
    McId mcForAddr(Addr addr) const;

    /**
     * Dump every component's statistics in gem5-style
     * "component.stat value" lines (cores, caches, MCs, NoC).
     */
    void dumpStats(std::ostream &os) const;

    /**
     * Register every component's statistics (callback-backed) with
     * @p registry: per-core pipeline counters and region-size
     * distributions, cache hit/miss, per-MC WPQ counters with occupancy
     * and broadcast-latency histograms, NoC traffic, and system-level
     * counters. The registry must not outlive this System.
     */
    void registerStats(stats::Registry &registry) const;

  private:
    bool done() const;
    bool advance(Tick limit);
    bool advanceCycleStepped(Tick limit);
    void scheduleThreads(Tick now);
    void maybeEndWarmup();
    void executeCrashDrain(Tick now, int interrupt_after = -1);
    void injectCrashFaults(Tick now);
    void injectPostDrainFaults(Tick now);
    RunResult collectResult(bool completed);

    SystemConfig cfg_;
    const compiler::CompiledProgram &program_;
    std::unique_ptr<mem::LrpoOracle> oracle_;
    std::unique_ptr<trace::TraceSink> traceSink_;
    std::unique_ptr<fault::FaultInjector> faultInjector_;
    CrashReport crashReport_;
    bool crashFaultsInjected_ = false;

    mem::MemImage execMem_;
    mem::MemImage pm_;
    cpu::LockTable locks_;
    cpu::RegionAllocator regionAlloc_;

    Simulator sim_;
    noc::Noc noc_;
    std::vector<std::unique_ptr<mem::MemController>> mcs_;
    std::vector<std::unique_ptr<mem::Cache>> l1d_;
    std::unique_ptr<mem::Cache> l2_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::vector<std::unique_ptr<cpu::ThreadContext>> threads_;

    /** Round-robin run queues: thread indices per core. */
    std::vector<std::vector<ThreadId>> runQueues_;
    std::vector<std::size_t> runIndex_;
    Tick nextScheduleCheck_ = 0;
    /** Any core oversubscribed? Then fast-forwards must stop at every
     *  schedule check so context switches land on the same cycles. */
    bool multiQueued_ = false;

    // runUntilWordChanges() watch state: checked (one branch) after each
    // executed cycle in both engines; dormant unless armed.
    bool watchArmed_ = false;
    Addr watchAddr_ = 0;
    std::uint64_t watchFrom_ = 0;
    bool watchServed_ = false;
    Tick watchTick_ = 0;

    bool crashed_ = false;
    bool drainFinished_ = false;  ///< crashFinish() loop already ran
    bool recovered_ = false;
    RecoveryOutcome bootOutcome_ = RecoveryOutcome::Recovered;
    unsigned failuresSurvived_ = 0;
    bool warmupDone_ = false;
    Tick warmupCycles_ = 0;
    std::uint64_t staleLoads_ = 0;
    std::uint64_t staleExtraMisses_ = 0;
};

} // namespace core
} // namespace lwsp

#endif // LWSP_CORE_SYSTEM_HH
