/**
 * @file
 * Workload profiles standing in for the paper's 38 applications.
 *
 * The evaluation's behaviour is driven by a handful of workload knobs:
 * store density (persist-path pressure), working-set size and access
 * pattern (DRAM-cache vs PM residency — the PSP-vs-WSP axis), pointer
 * dependence (memory-latency exposure), synchronization rate (region-ID
 * ordering traffic) and thread count. Each profile names a paper app and
 * sets those knobs to that app's published character; the generator turns
 * a profile into a deterministic LightIR program whose final memory state
 * is interleaving-independent (confluent), which the crash-recovery
 * equivalence checks rely on.
 */

#ifndef LWSP_WORKLOADS_PROFILE_HH
#define LWSP_WORKLOADS_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace lwsp {
namespace workloads {

/** One inner-loop kernel executed by every thread. */
struct PhaseSpec
{
    enum class Pattern : std::uint8_t
    {
        Sequential,  ///< streaming, line-granular strides (lbm, ft)
        Random,      ///< hashed scatter/gather (is, radix, rb)
        Pointer,     ///< load-dependent chase (mcf, cg)
    };

    Pattern pattern = Pattern::Sequential;
    unsigned loads = 2;    ///< memory reads per iteration
    unsigned stores = 1;   ///< memory writes per iteration
    unsigned alus = 8;     ///< arithmetic filler per iteration
    unsigned trip = 256;   ///< inner-loop iterations per call
    unsigned reps = 1;     ///< times the phase is invoked from main
    bool lockedRmw = false;   ///< lock-protected shared counter update
    bool atomicUpdate = false; ///< AtomicAdd on a shared cell
    /**
     * Execute the shared update only every N-th iteration (power of two).
     * Real transactional workloads synchronize every few hundred
     * instructions, not every loop trip.
     */
    unsigned syncEvery = 16;
    /** Shared cells updated inside each locked critical section. */
    unsigned csCells = 6;
    /** Sequential-pattern stride per access (bytes). */
    unsigned seqStrideBytes = 64;
};

struct WorkloadProfile
{
    std::string name;
    std::string suite;  ///< CPU2006, CPU2017, STAMP, NPB, SPLASH3, WHISPER
    unsigned threads = 1;

    /** Per-thread partition size (power of two, bytes). */
    std::size_t footprintBytes = 1 << 20;
    /** Hot-subset size for the locality split (power of two, bytes). */
    std::size_t hotBytes = 64 * 1024;
    /** Fraction of accesses confined to the hot subset. */
    double locality = 0.75;

    double branchMissRate = 0.02;

    /** PPA/Capri implicit hardware-region size for this app (PRF-driven). */
    unsigned hwRegionStores = 32;

    std::vector<PhaseSpec> phases;
};

/** All 38 paper applications in Fig. 7 row order. */
const std::vector<WorkloadProfile> &paperProfiles();

/** Lookup by name; fatal() if unknown. */
const WorkloadProfile &profileByName(const std::string &name);

/** Names of the memory-intensive subset used in Fig. 9. */
const std::vector<std::string> &memoryIntensiveNames();

} // namespace workloads
} // namespace lwsp

#endif // LWSP_WORKLOADS_PROFILE_HH
