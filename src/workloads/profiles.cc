#include "profile.hh"

#include "common/logging.hh"

namespace lwsp {
namespace workloads {

namespace {

using Pattern = PhaseSpec::Pattern;

constexpr std::size_t kB = 1024;
constexpr std::size_t MB = 1024 * 1024;

/** Shorthand for a single-phase profile. */
WorkloadProfile
mk(const char *name, const char *suite, unsigned threads,
   std::size_t footprint, std::size_t hot, double locality,
   double branch_miss, unsigned hw_region, Pattern pat, unsigned loads,
   unsigned stores, unsigned alus, unsigned trip, unsigned reps,
   bool locked = false, bool atomic = false, unsigned stride = 64)
{
    WorkloadProfile p;
    p.name = name;
    p.suite = suite;
    p.threads = threads;
    p.footprintBytes = footprint;
    p.hotBytes = hot;
    p.locality = locality;
    p.branchMissRate = branch_miss;
    p.hwRegionStores = hw_region;
    PhaseSpec ph;
    ph.pattern = pat;
    ph.loads = loads;
    ph.stores = stores;
    ph.alus = alus;
    ph.trip = trip;
    ph.reps = reps;
    ph.lockedRmw = locked;
    ph.atomicUpdate = atomic;
    ph.seqStrideBytes = stride;
    p.phases.push_back(ph);
    return p;
}

std::vector<WorkloadProfile>
buildTable()
{
    std::vector<WorkloadProfile> t;

    // ---- SPEC CPU2006 (single-threaded) --------------------------------
    // Footprint sizing (scaled with the caches, see SystemConfig):
    // memory-intensive apps wrap inside 1-2MB — several times the 256KB
    // shared L2 but DRAM-cache resident — so the baseline reuses the
    // DRAM cache while ideal PSP pays PM latency/bandwidth on every L2
    // miss. Cache-friendly apps keep hot sets at or under L2 size.
    t.push_back(mk("bzip2", "CPU2006", 1, 512 * kB, 128 * kB, 0.80, 0.030,
                   32, Pattern::Random, 3, 1, 10, 512, 10));
    t.push_back(mk("h264ref", "CPU2006", 1, 512 * kB, 64 * kB, 0.90,
                   0.020, 40, Pattern::Sequential, 2, 1, 14, 512, 10));
    t.push_back(mk("hmmer", "CPU2006", 1, 256 * kB, 64 * kB, 0.90, 0.010,
                   40, Pattern::Sequential, 3, 1, 12, 512, 10));
    t.push_back(mk("lbm", "CPU2006", 1, 512 * kB, 64 * kB, 0.15, 0.005,
                   24, Pattern::Sequential, 2, 2, 6, 512, 12, false,
                   false, 256));
    t.push_back(mk("libquan", "CPU2006", 1, 512 * kB, 64 * kB, 0.05,
                   0.005, 28, Pattern::Sequential, 1, 1, 4, 1024, 8,
                   false, false, 512));
    t.push_back(mk("mcf", "CPU2006", 1, 512 * kB, 64 * kB, 0.30, 0.040,
                   28, Pattern::Pointer, 3, 1, 4, 512, 8));
    t.push_back(mk("milc", "CPU2006", 1, 512 * kB, 64 * kB, 0.25, 0.010,
                   28, Pattern::Sequential, 2, 1, 6, 512, 12, false,
                   false, 256));
    t.push_back(mk("namd", "CPU2006", 1, 512 * kB, 128 * kB, 0.92, 0.008,
                   44, Pattern::Sequential, 2, 1, 16, 512, 10));

    // ---- SPEC CPU2017 (single-threaded) --------------------------------
    t.push_back(mk("dsjeng", "CPU2017", 1, 1 * MB, 128 * kB, 0.85, 0.060,
                   36, Pattern::Random, 2, 1, 10, 512, 10));
    t.push_back(mk("imagick", "CPU2017", 1, 1 * MB, 128 * kB, 0.80,
                   0.010, 40, Pattern::Sequential, 2, 1, 14, 512, 10));
    t.push_back(mk("lbm17", "CPU2017", 1, 512 * kB, 64 * kB, 0.15, 0.005,
                   24, Pattern::Sequential, 2, 2, 6, 512, 12, false,
                   false, 256));
    t.push_back(mk("leela", "CPU2017", 1, 512 * kB, 64 * kB, 0.88, 0.060,
                   36, Pattern::Random, 2, 1, 12, 512, 10));
    t.push_back(mk("nab", "CPU2017", 1, 1 * MB, 128 * kB, 0.85, 0.012,
                   40, Pattern::Sequential, 2, 1, 12, 512, 10));
    t.push_back(mk("namd17", "CPU2017", 1, 512 * kB, 128 * kB, 0.92,
                   0.008, 44, Pattern::Sequential, 2, 1, 16, 512, 10));
    t.push_back(mk("xz", "CPU2017", 1, 512 * kB, 128 * kB, 0.70, 0.030, 32,
                   Pattern::Random, 3, 1, 8, 512, 10));

    // ---- STAMP (8 threads, transactional) --------------------------------
    t.push_back(mk("intruder", "STAMP", 8, 512 * kB, 64 * kB, 0.75,
                   0.030, 32, Pattern::Random, 2, 1, 16, 256, 8, true));
    t.push_back(mk("labyrinth", "STAMP", 8, 512 * kB, 128 * kB, 0.60,
                   0.020, 28, Pattern::Random, 2, 2, 14, 256, 8, true));
    t.push_back(mk("ssca2", "STAMP", 8, 512 * kB, 64 * kB, 0.40, 0.020,
                   28, Pattern::Random, 2, 1, 6, 256, 8, false, true));
    t.push_back(mk("vacation", "STAMP", 8, 512 * kB, 128 * kB, 0.70, 0.025,
                   32, Pattern::Random, 3, 1, 16, 256, 8, true));

    // ---- NPB (8 threads) ---------------------------------------------------
    t.push_back(mk("cg", "NPB", 8, 512 * kB, 64 * kB, 0.35, 0.010, 30,
                   Pattern::Pointer, 3, 1, 6, 256, 8));
    t.push_back(mk("ep", "NPB", 8, 64 * kB, 32 * kB, 0.95, 0.005, 48,
                   Pattern::Sequential, 1, 1, 18, 256, 10));
    t.push_back(mk("is", "NPB", 8, 512 * kB, 64 * kB, 0.30, 0.010, 24,
                   Pattern::Random, 1, 2, 16, 256, 10));
    t.push_back(mk("ft", "NPB", 8, 512 * kB, 64 * kB, 0.25, 0.008, 28,
                   Pattern::Sequential, 2, 2, 8, 256, 8, false, false,
                   256));
    t.push_back(mk("lu", "NPB", 8, 512 * kB, 128 * kB, 0.70, 0.010, 32,
                   Pattern::Sequential, 2, 1, 10, 256, 8));
    t.push_back(mk("mg", "NPB", 8, 512 * kB, 64 * kB, 0.35, 0.008, 30,
                   Pattern::Sequential, 2, 1, 8, 256, 8, false, false,
                   256));
    t.push_back(mk("sp", "NPB", 8, 512 * kB, 128 * kB, 0.55, 0.010, 32,
                   Pattern::Sequential, 2, 1, 10, 256, 8));

    // ---- SPLASH3 (8 threads) ----------------------------------------------
    t.push_back(mk("cholesky", "SPLASH3", 8, 512 * kB, 128 * kB, 0.70,
                   0.015, 34, Pattern::Random, 2, 1, 10, 256, 8));
    t.push_back(mk("fft", "SPLASH3", 8, 512 * kB, 128 * kB, 0.45, 0.008,
                   32, Pattern::Sequential, 2, 1, 8, 256, 8));
    t.push_back(mk("radix", "SPLASH3", 8, 512 * kB, 64 * kB, 0.30, 0.008,
                   24, Pattern::Random, 1, 2, 16, 256, 10));
    t.push_back(mk("barnes", "SPLASH3", 8, 512 * kB, 128 * kB, 0.60,
                   0.025, 32, Pattern::Pointer, 3, 1, 8, 256, 8));
    t.push_back(mk("raytrace", "SPLASH3", 8, 512 * kB, 128 * kB, 0.70,
                   0.030, 34, Pattern::Random, 3, 1, 10, 256, 8));
    t.push_back(mk("lu-cg", "SPLASH3", 8, 512 * kB, 128 * kB, 0.70,
                   0.010, 32, Pattern::Sequential, 2, 1, 10, 256, 8));
    t.push_back(mk("lu-ncg", "SPLASH3", 8, 512 * kB, 128 * kB, 0.60,
                   0.010, 32, Pattern::Sequential, 2, 1, 10, 256, 8));
    t.push_back(mk("ocean-cg", "SPLASH3", 8, 512 * kB, 64 * kB, 0.30,
                   0.010, 30, Pattern::Sequential, 2, 2, 8, 256, 8,
                   false, false, 256));
    t.push_back(mk("water-ns", "SPLASH3", 8, 512 * kB, 128 * kB, 0.85,
                   0.010, 40, Pattern::Sequential, 2, 1, 12, 256, 8));
    t.push_back(mk("water-sp", "SPLASH3", 8, 512 * kB, 128 * kB, 0.85,
                   0.010, 40, Pattern::Sequential, 2, 1, 12, 256, 8));

    // ---- WHISPER (8 threads, write-intensive persistent apps) -----------
    t.push_back(mk("rb", "WHISPER", 8, 256 * kB, 64 * kB, 0.50, 0.020, 26,
                   Pattern::Random, 2, 2, 16, 256, 8, true));
    t.push_back(mk("tatp", "WHISPER", 8, 256 * kB, 64 * kB, 0.60, 0.015,
                   26, Pattern::Random, 2, 2, 16, 256, 8, true));
    t.push_back(mk("tpcc", "WHISPER", 8, 256 * kB, 64 * kB, 0.55, 0.020,
                   26, Pattern::Random, 3, 3, 12, 256, 8, true));

    return t;
}

} // namespace

const std::vector<WorkloadProfile> &
paperProfiles()
{
    static const std::vector<WorkloadProfile> table = buildTable();
    return table;
}

const WorkloadProfile &
profileByName(const std::string &name)
{
    for (const auto &p : paperProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown workload profile '", name, "'");
}

const std::vector<std::string> &
memoryIntensiveNames()
{
    static const std::vector<std::string> names = {
        "lbm", "libquan", "milc", "rb", "tatp", "tpcc",
    };
    return names;
}

} // namespace workloads
} // namespace lwsp
