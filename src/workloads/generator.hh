/**
 * @file
 * Turns a WorkloadProfile into a deterministic LightIR program.
 *
 * Program shape: every thread runs function @main with its thread id in
 * r0, computes its private partition base, then calls one function per
 * phase. Each phase is a single-block counted loop (so the compiler's
 * unrolling and loop-header boundary machinery is exercised) issuing the
 * profile's loads/stores/ALU mix over sequential, hashed-random or
 * load-dependent (pointer-chase) addresses, split between a hot subset
 * and the full footprint per the locality knob. Multi-threaded profiles
 * add lock-protected or atomic read-modify-writes on shared cells; all
 * cross-thread effects are commutative, so the final memory state is
 * independent of interleaving (confluent) — the property the
 * crash-recovery equivalence tests rely on.
 */

#ifndef LWSP_WORKLOADS_GENERATOR_HH
#define LWSP_WORKLOADS_GENERATOR_HH

#include <memory>
#include <vector>

#include "ir/program.hh"
#include "workloads/profile.hh"

namespace lwsp {
namespace workloads {

struct Workload
{
    std::unique_ptr<ir::Module> module;
    WorkloadProfile profile;
    std::vector<Addr> lockAddrs;  ///< for post-crash lock reconstruction
    /** Approximate dynamic instructions per thread (warmup sizing). */
    std::uint64_t estimatedInstsPerThread = 0;

    static constexpr Addr heapBase = 0x1000'0000ull;
    static constexpr Addr sharedBase = 0x6000'0000'0000ull;
};

/** Generate the program for @p profile. Deterministic. */
Workload generate(const WorkloadProfile &profile);

/** Convenience: generate by paper-app name. */
Workload generateByName(const std::string &name);

} // namespace workloads
} // namespace lwsp

#endif // LWSP_WORKLOADS_GENERATOR_HH
