#include "generator.hh"

#include "common/intmath.hh"
#include "common/logging.hh"
#include "ir/verifier.hh"

namespace lwsp {
namespace workloads {

using namespace ir;

namespace {

/*
 * Register convention inside generated code:
 *   r0  thread id (read-only)       r8  offset temp / RMW scratch
 *   r1  partition base (read-only)  r9  sequential pointer
 *   r2  shared base (read-only)     r10 load destination
 *   r3  loop counter                r11 effective address
 *   r4  LCG state                   r12 store value
 *   r5  hot byte-mask (8B aligned)  r13 accumulator
 *   r6  full byte-mask (8B aligned) r14 shift constant (13)
 *   r7  trip bound                  r15 stack pointer (reserved)
 */
constexpr Reg rTid = 0, rBase = 1, rShared = 2, rCtr = 3, rLcg = 4,
              rHotMask = 5, rFullMask = 6, rTrip = 7, rTmp = 8, rSeq = 9,
              rLoad = 10, rAddr = 11, rVal = 12, rAcc = 13, rShift = 14;

/** Emit one address computation into @p body; result in rAddr.
 *  @p seq_slot is the access's index within the iteration (sequential
 *  pattern: the first access advances the pointer, later ones address
 *  fixed line offsets from it, so the per-iteration advance stays a
 *  power of two and revisits line up exactly across footprint wraps). */
void
emitAddress(std::vector<Instruction> &body, PhaseSpec::Pattern pattern,
            bool hot, unsigned stride, unsigned seq_slot)
{
    Reg mask = hot ? rHotMask : rFullMask;
    switch (pattern) {
      case PhaseSpec::Pattern::Sequential: {
        if (seq_slot == 0) {
            body.push_back(Instruction::aluImm(
                Opcode::AddI, rSeq, rSeq,
                static_cast<std::int64_t>(stride)));
            body.push_back(Instruction::alu(Opcode::And, rSeq, rSeq,
                                            rFullMask));
        }
        std::int64_t off =
            static_cast<std::int64_t>(seq_slot) * cachelineBytes;
        body.push_back(Instruction::aluImm(Opcode::AddI, rTmp, rSeq,
                                           off));
        body.push_back(Instruction::alu(Opcode::And, rTmp, rTmp, mask));
        body.push_back(Instruction::alu(Opcode::Add, rAddr, rBase,
                                        rTmp));
        break;
      }
      case PhaseSpec::Pattern::Random:
        body.push_back(Instruction::aluImm(Opcode::MulI, rLcg, rLcg,
                                           1103515245));
        body.push_back(Instruction::aluImm(Opcode::AddI, rLcg, rLcg,
                                           12345));
        body.push_back(Instruction::alu(Opcode::Shr, rTmp, rLcg, rShift));
        body.push_back(Instruction::alu(Opcode::And, rTmp, rTmp, mask));
        body.push_back(Instruction::alu(Opcode::Add, rAddr, rBase, rTmp));
        break;
      case PhaseSpec::Pattern::Pointer:
        // The next address depends on the previous load: a serialized
        // chase that exposes memory latency.
        body.push_back(Instruction::aluImm(Opcode::MulI, rLcg, rLcg, 5));
        body.push_back(Instruction::alu(Opcode::Add, rLcg, rLcg, rLoad));
        body.push_back(Instruction::aluImm(Opcode::AddI, rLcg, rLcg,
                                           12345));
        body.push_back(Instruction::alu(Opcode::Shr, rTmp, rLcg, rShift));
        body.push_back(Instruction::alu(Opcode::And, rTmp, rTmp, mask));
        body.push_back(Instruction::alu(Opcode::Add, rAddr, rBase, rTmp));
        break;
    }
}

/** Build one phase function; returns its FuncId. */
FuncId
buildPhase(Module &m, const WorkloadProfile &p, const PhaseSpec &spec,
           unsigned phase_index)
{
    Function &fn =
        m.addFunction("phase" + std::to_string(phase_index));
    BasicBlock &entry = fn.addBlock();   // b0: setup
    BasicBlock &loop = fn.addBlock();    // b1: single-block counted loop
    BasicBlock &exit = fn.addBlock();    // b2: ret

    auto aligned_mask = [](std::size_t bytes) {
        return static_cast<std::int64_t>((bytes - 1) & ~7ull);
    };

    entry.append(Instruction::movi(rCtr, 0));
    // The LCG state and the streaming pointer deliberately carry over
    // from the previous invocation (r4/r9 are live-in): repeated phase
    // calls then cover fresh parts of the footprint instead of
    // re-touching the first call's lines.
    entry.append(Instruction::aluImm(Opcode::MulI, rLcg, rLcg, 40503));
    entry.append(Instruction::alu(Opcode::Add, rLcg, rLcg, rTid));
    entry.append(Instruction::aluImm(Opcode::AddI, rLcg, rLcg,
                                     12345 + phase_index * 977));
    entry.append(Instruction::movi(rHotMask, aligned_mask(p.hotBytes)));
    entry.append(Instruction::movi(rFullMask,
                                   aligned_mask(p.footprintBytes)));
    entry.append(Instruction::movi(rTrip, spec.trip));
    entry.append(Instruction::movi(rAcc, 0));
    entry.append(Instruction::movi(rLoad, 1));
    entry.append(Instruction::movi(rShift, 13));
    entry.append(Instruction::jmp(loop.id()));

    // Loop body: loads first, then stores; the locality split assigns the
    // leading accesses to the hot subset.
    std::vector<Instruction> body;
    unsigned accesses = spec.loads + spec.stores;
    unsigned hot_accesses = static_cast<unsigned>(
        p.locality * static_cast<double>(accesses) + 0.5);

    unsigned slot = 0;
    for (unsigned i = 0; i < spec.loads; ++i, ++slot) {
        emitAddress(body, spec.pattern, slot < hot_accesses,
                    spec.seqStrideBytes, slot);
        body.push_back(Instruction::load(rLoad, rAddr, 0));
        body.push_back(Instruction::alu(Opcode::Add, rAcc, rAcc, rLoad));
    }
    for (unsigned i = 0; i < spec.stores; ++i, ++slot) {
        emitAddress(body, spec.pattern, slot < hot_accesses,
                    spec.seqStrideBytes, slot);
        body.push_back(Instruction::alu(Opcode::Add, rVal, rAcc, rCtr));
        body.push_back(Instruction::store(rAddr, 0, rVal));
    }

    // ALU filler to hit the profile's compute density.
    for (unsigned i = 0; i < spec.alus; ++i) {
        if (i % 4 == 3) {
            body.push_back(Instruction::alu(Opcode::Fma, rAcc, rVal,
                                            rCtr));
        } else {
            body.push_back(
                Instruction::aluImm(Opcode::AddI, rAcc, rAcc, 7));
        }
    }

    bool has_sync = spec.lockedRmw || spec.atomicUpdate;
    if (!has_sync) {
        body.push_back(Instruction::aluImm(Opcode::AddI, rCtr, rCtr, 1));
        for (const auto &inst : body)
            loop.append(inst);
        loop.append(Instruction::branch(Opcode::Blt, rCtr, rTrip,
                                        loop.id(), exit.id()));
        fn.loopTripCounts()[loop.id()] = spec.trip;
        exit.append(Instruction::simple(Opcode::Ret));
        return fn.id();
    }

    // Synchronizing phases: an outer transaction loop around an inner
    // single-block compute loop of syncEvery iterations. The inner loop
    // stays unrollable (so regions span several iterations) and the
    // critical section runs once per outer trip — the structure of a
    // real STAMP/WHISPER transaction. The outer counter reuses r5; sync
    // phases therefore address every access through the full-footprint
    // mask (locality is set by the footprint itself).
    BasicBlock &cs_block = fn.addBlock();    // b3: CS + outer latch
    BasicBlock &outer_head = fn.addBlock();  // b4: inner-counter reset

    unsigned every = std::max(1u, spec.syncEvery);
    unsigned outer_trips = std::max(1u, spec.trip / every);

    // Repurpose entry constants: r5 = outer counter, r7 = inner bound.
    auto &entry_insts = fn.block(0).insts();
    for (auto &inst : entry_insts) {
        if (inst.op == Opcode::Movi && inst.rd == rHotMask)
            inst.imm = static_cast<std::int64_t>(outer_trips);
        if (inst.op == Opcode::Movi && inst.rd == rTrip)
            inst.imm = static_cast<std::int64_t>(every);
    }
    entry_insts.back().target = outer_head.id();  // entry jmp -> b4
    outer_head.append(Instruction::movi(rCtr, 0));
    outer_head.append(Instruction::jmp(loop.id()));

    // The hot-mask register is gone: redirect hot accesses to the full
    // mask so the body stays well-formed.
    for (auto &inst : body) {
        if (inst.op == Opcode::And && inst.rs2 == rHotMask)
            inst.rs2 = rFullMask;
    }

    body.push_back(Instruction::aluImm(Opcode::AddI, rCtr, rCtr, 1));
    for (const auto &inst : body)
        loop.append(inst);
    loop.append(Instruction::branch(Opcode::Blt, rCtr, rTrip, loop.id(),
                                    cs_block.id()));
    fn.loopTripCounts()[loop.id()] = every;

    if (spec.lockedRmw) {
        // A transaction-sized critical section: a batch of commutative
        // increments over distinct shared cells (final sums independent
        // of interleaving), so the boundary stores the compiler adds
        // around the lock operations are amortized over real CS work.
        cs_block.append(Instruction::lockOp(Opcode::LockAcq, rShared, 0));
        for (unsigned cell = 0; cell < spec.csCells; ++cell) {
            std::int64_t off = 8 + 8 * static_cast<std::int64_t>(cell);
            cs_block.append(Instruction::load(rTmp, rShared, off));
            cs_block.append(
                Instruction::aluImm(Opcode::AddI, rTmp, rTmp, 1));
            cs_block.append(Instruction::store(rShared, off, rTmp));
            // Private work interleaved inside the transaction.
            cs_block.append(
                Instruction::aluImm(Opcode::AddI, rAcc, rAcc, 3));
            cs_block.append(
                Instruction::aluImm(Opcode::AddI, rAcc, rAcc, 5));
        }
        cs_block.append(Instruction::lockOp(Opcode::LockRel, rShared, 0));
    }
    if (spec.atomicUpdate) {
        // The atomic's cell must stay disjoint from every lockedRmw CS
        // cell (offsets 8..8*csCells): an unlocked AtomicAdd landing
        // between a CS's load and store of the same cell would be
        // overwritten, making the final sum interleaving-dependent and
        // breaking the generator's confluence contract. Offset 56 is
        // the last granule of the CS cells' cache line, clear of any
        // csCells <= 6 (enforced below).
        cs_block.append(Instruction::movi(rTmp, 1));
        cs_block.append(Instruction::atomicAdd(rShared, 56, rTmp));
    }
    cs_block.append(Instruction::aluImm(Opcode::AddI, rHotMask, rHotMask,
                                        -1));
    cs_block.append(Instruction::movi(rVal, 0));
    cs_block.append(Instruction::branch(Opcode::Bne, rHotMask, rVal,
                                        outer_head.id(), exit.id()));

    exit.append(Instruction::simple(Opcode::Ret));
    return fn.id();
}

} // namespace

Workload
generate(const WorkloadProfile &profile)
{
    LWSP_ASSERT(isPowerOf2(profile.footprintBytes) &&
                    isPowerOf2(profile.hotBytes),
                "footprint/hot sizes must be powers of two");
    for (const PhaseSpec &spec : profile.phases) {
        LWSP_ASSERT(!spec.lockedRmw || spec.csCells <= 6,
                    "csCells > 6 would overlap the shared atomic cell");
    }

    Workload w;
    w.profile = profile;
    w.module = std::make_unique<Module>();
    Module &m = *w.module;

    Function &main = m.addFunction("main");
    BasicBlock &b0 = main.addBlock();

    // Partition base: heapBase + tid * footprint (disjoint per thread).
    b0.append(Instruction::aluImm(
        Opcode::MulI, rBase, rTid,
        static_cast<std::int64_t>(profile.footprintBytes)));
    b0.append(Instruction::aluImm(
        Opcode::AddI, rBase, rBase,
        static_cast<std::int64_t>(Workload::heapBase)));
    b0.append(Instruction::movi(
        rShared, static_cast<std::int64_t>(Workload::sharedBase)));

    bool uses_lock = false;
    for (std::size_t i = 0; i < profile.phases.size(); ++i) {
        const PhaseSpec &spec = profile.phases[i];
        FuncId phase =
            buildPhase(m, profile, spec, static_cast<unsigned>(i));
        for (unsigned rep = 0; rep < spec.reps; ++rep)
            b0.append(Instruction::call(phase));
        uses_lock = uses_lock || spec.lockedRmw;

        // Rough dynamic-instruction estimate for warmup sizing.
        std::uint64_t body =
            10 + 6ull * (spec.loads + spec.stores) + spec.alus +
            ((spec.lockedRmw || spec.atomicUpdate)
                 ? (2 + 5ull * spec.csCells) / spec.syncEvery + 4
                 : 0);
        w.estimatedInstsPerThread +=
            static_cast<std::uint64_t>(spec.trip) * spec.reps * body;
    }
    b0.append(Instruction::simple(Opcode::Halt));

    if (uses_lock)
        w.lockAddrs.push_back(Workload::sharedBase);

    verifyModuleOrDie(m);
    return w;
}

Workload
generateByName(const std::string &name)
{
    return generate(profileByName(name));
}

} // namespace workloads
} // namespace lwsp
