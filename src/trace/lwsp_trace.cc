/**
 * @file
 * lwsp_trace — inspect, filter and convert binary simulator traces.
 *
 *   lwsp_trace info    run.lwsptrc
 *   lwsp_trace dump    run.lwsptrc [--category wpq ...]
 *   lwsp_trace convert run.lwsptrc run.json [--category ...]
 *   lwsp_trace filter  run.lwsptrc out.lwsptrc --category region ...
 *
 * `convert` writes Chrome/Perfetto trace_event JSON loadable at
 * https://ui.perfetto.dev. `--category` may repeat; when present only
 * the named categories survive.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "trace/export.hh"

namespace {

using namespace lwsp;
using namespace lwsp::trace;

int
usage()
{
    std::fprintf(stderr,
        "usage: lwsp_trace <command> [args]\n"
        "  info    <in.lwsptrc>                  summary: counts, tick "
        "range, units\n"
        "  dump    <in.lwsptrc> [--category C]   one line per event\n"
        "  convert <in.lwsptrc> <out.json> [--category C]\n"
        "                                        Perfetto trace_event "
        "JSON\n"
        "  filter  <in.lwsptrc> <out.lwsptrc> --category C [...]\n"
        "                                        keep only listed "
        "categories\n"
        "categories: region boundary wpq cache checkpoint power sched\n");
    return 2;
}

/** Collect --category flags; @return ~0u if none given (keep all). */
bool
parseMask(int argc, char **argv, int firstOpt, std::uint32_t &mask)
{
    mask = 0;
    bool any = false;
    for (int i = firstOpt; i < argc; ++i) {
        if (std::strcmp(argv[i], "--category") != 0) {
            std::fprintf(stderr, "lwsp_trace: unknown option %s\n",
                         argv[i]);
            return false;
        }
        if (i + 1 >= argc) {
            std::fprintf(stderr, "lwsp_trace: --category needs a name\n");
            return false;
        }
        std::uint32_t bit = parseCategory(argv[++i]);
        if (bit == 0) {
            std::fprintf(stderr, "lwsp_trace: unknown category '%s'\n",
                         argv[i]);
            return false;
        }
        mask |= bit;
        any = true;
    }
    if (!any)
        mask = allCategories;
    return true;
}

bool
load(const char *path, std::vector<Event> &events)
{
    std::string err;
    if (!readBinaryFile(path, events, err)) {
        std::fprintf(stderr, "lwsp_trace: %s: %s\n", path, err.c_str());
        return false;
    }
    return true;
}

int
cmdInfo(const char *path)
{
    std::vector<Event> events;
    if (!load(path, events))
        return 1;
    TraceSummary s = summarize(events);
    std::printf("file:    %s\n", path);
    std::printf("events:  %zu\n", s.events);
    std::printf("ticks:   [%llu, %llu]\n",
                static_cast<unsigned long long>(s.firstTick),
                static_cast<unsigned long long>(s.lastTick));
    std::printf("cores:   %u\n", s.numCores);
    std::printf("mcs:     %u\n", s.numMcs);
    for (std::uint8_t t = 0; t < numEventTypes; ++t) {
        if (s.perType[t] == 0)
            continue;
        auto type = static_cast<EventType>(t);
        std::printf("  %-16s %10zu  (%s)\n", eventTypeName(type),
                    s.perType[t], categoryName(categoryOf(type)));
    }
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    std::uint32_t mask;
    if (!parseMask(argc, argv, 3, mask))
        return 2;
    std::vector<Event> events;
    if (!load(argv[2], events))
        return 1;
    writeText(std::cout, filterByMask(events, mask));
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    std::uint32_t mask;
    if (!parseMask(argc, argv, 4, mask))
        return 2;
    std::vector<Event> events;
    if (!load(argv[2], events))
        return 1;
    if (!writePerfettoFile(argv[3], filterByMask(events, mask))) {
        std::fprintf(stderr, "lwsp_trace: cannot write %s\n", argv[3]);
        return 1;
    }
    std::printf("wrote %s (%zu events) — load at https://ui.perfetto.dev\n",
                argv[3], events.size());
    return 0;
}

int
cmdFilter(int argc, char **argv)
{
    std::uint32_t mask;
    if (!parseMask(argc, argv, 4, mask))
        return 2;
    std::vector<Event> events;
    if (!load(argv[2], events))
        return 1;
    std::vector<Event> kept = filterByMask(events, mask);
    if (!writeBinaryFile(argv[3], kept)) {
        std::fprintf(stderr, "lwsp_trace: cannot write %s\n", argv[3]);
        return 1;
    }
    std::printf("wrote %s (%zu of %zu events)\n", argv[3], kept.size(),
                events.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const char *cmd = argv[1];
    if (std::strcmp(cmd, "info") == 0 && argc == 3)
        return cmdInfo(argv[2]);
    if (std::strcmp(cmd, "dump") == 0)
        return cmdDump(argc, argv);
    if (std::strcmp(cmd, "convert") == 0 && argc >= 4)
        return cmdConvert(argc, argv);
    if (std::strcmp(cmd, "filter") == 0 && argc >= 4)
        return cmdFilter(argc, argv);
    return usage();
}
