#include "trace/export.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace lwsp {
namespace trace {

// ---- Binary format ---------------------------------------------------------

namespace {

constexpr std::uint32_t binaryVersion = 1;
constexpr std::size_t recordBytes = 56;

void
putU32(char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putU64(char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

void
packRecord(char *rec, const Event &e)
{
    std::memset(rec, 0, recordBytes);
    putU64(rec + 0, e.tick);
    rec[8] = static_cast<char>(e.type);
    putU32(rec + 12, static_cast<std::uint32_t>(e.unit));
    putU32(rec + 16, e.thread);
    putU64(rec + 24, e.region);
    putU64(rec + 32, e.addr);
    putU64(rec + 40, e.value);
    putU64(rec + 48, e.aux);
}

bool
unpackRecord(const char *rec, Event &e)
{
    auto raw_type = static_cast<std::uint8_t>(rec[8]);
    if (raw_type >= numEventTypes)
        return false;
    e.tick = getU64(rec + 0);
    e.type = static_cast<EventType>(raw_type);
    e.unit = static_cast<std::int32_t>(getU32(rec + 12));
    e.thread = getU32(rec + 16);
    e.region = getU64(rec + 24);
    e.addr = getU64(rec + 32);
    e.value = getU64(rec + 40);
    e.aux = getU64(rec + 48);
    return true;
}

} // namespace

bool
writeBinary(std::ostream &os, const std::vector<Event> &events)
{
    char header[24];
    std::memcpy(header, binaryMagic, 8);
    putU32(header + 8, binaryVersion);
    putU32(header + 12, 0);
    putU64(header + 16, events.size());
    os.write(header, sizeof(header));

    char rec[recordBytes];
    for (const Event &e : events) {
        packRecord(rec, e);
        os.write(rec, recordBytes);
    }
    os.flush();
    return static_cast<bool>(os);
}

bool
writeBinaryFile(const std::string &path, const std::vector<Event> &events)
{
    std::ofstream os(path, std::ios::binary);
    return os && writeBinary(os, events);
}

bool
readBinary(std::istream &is, std::vector<Event> &out, std::string &err)
{
    char header[24];
    if (!is.read(header, sizeof(header))) {
        err = "truncated header";
        return false;
    }
    if (std::memcmp(header, binaryMagic, 8) != 0) {
        err = "bad magic (not an lwsp trace file)";
        return false;
    }
    std::uint32_t version = getU32(header + 8);
    if (version != binaryVersion) {
        err = "unsupported trace version " + std::to_string(version);
        return false;
    }
    std::uint64_t count = getU64(header + 16);

    out.clear();
    out.reserve(static_cast<std::size_t>(count));
    char rec[recordBytes];
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!is.read(rec, recordBytes)) {
            err = "truncated at record " + std::to_string(i) + " of " +
                  std::to_string(count);
            return false;
        }
        Event e;
        if (!unpackRecord(rec, e)) {
            err = "unknown event type in record " + std::to_string(i);
            return false;
        }
        out.push_back(e);
    }
    err.clear();
    return true;
}

bool
readBinaryFile(const std::string &path, std::vector<Event> &out,
               std::string &err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        err = "cannot open " + path;
        return false;
    }
    return readBinary(is, out, err);
}

std::vector<Event>
filterByMask(const std::vector<Event> &events, std::uint32_t mask)
{
    std::vector<Event> out;
    out.reserve(events.size());
    for (const Event &e : events) {
        if (mask & categoryBit(categoryOf(e.type)))
            out.push_back(e);
    }
    return out;
}

// ---- Summary ---------------------------------------------------------------

namespace {

/** Is the event's unit a core index (vs an MC index)? */
bool
coreScoped(EventType t)
{
    switch (t) {
      case EventType::RegionBegin:
      case EventType::RegionClose:
      case EventType::BoundaryBcastSend:
      case EventType::CacheWriteback:
      case EventType::CheckpointStore:
      case EventType::CtxSwitch:
      case EventType::ServeMark:
        return true;
      default:
        return false;
    }
}

bool
mcScoped(EventType t)
{
    switch (t) {
      case EventType::RegionPersist:
      case EventType::BoundaryBcastRecv:
      case EventType::BoundaryAck:
      case EventType::WpqEnqueue:
      case EventType::WpqRelease:
      case EventType::WpqDrainDone:
      case EventType::FaultInjected:  // unit = damaged/stalled MC (or -1)
        return true;
      default:
        return false;
    }
}

} // namespace

TraceSummary
summarize(const std::vector<Event> &events)
{
    TraceSummary s;
    s.events = events.size();
    bool first = true;
    for (const Event &e : events) {
        if (first || e.tick < s.firstTick)
            s.firstTick = e.tick;
        if (first || e.tick > s.lastTick)
            s.lastTick = e.tick;
        first = false;
        ++s.perType[static_cast<std::uint8_t>(e.type)];
        if (e.unit >= 0) {
            auto u = static_cast<unsigned>(e.unit) + 1;
            if (coreScoped(e.type))
                s.numCores = std::max(s.numCores, u);
            else if (mcScoped(e.type))
                s.numMcs = std::max(s.numMcs, u);
        }
    }
    return s;
}

// ---- Perfetto JSON ---------------------------------------------------------

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers anyway). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

class EventWriter
{
  public:
    explicit EventWriter(std::ostream &os) : os_(os) {}

    /** Start one trace_event object ({"ph":..,"pid":1,...). */
    std::ostream &
    open(char ph, Tick ts, int tid)
    {
        if (!first_)
            os_ << ",\n";
        first_ = false;
        os_ << "{\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << tid
            << ",\"ts\":" << ts;
        return os_;
    }

    void close() { os_ << "}"; }

  private:
    std::ostream &os_;
    bool first_ = true;
};

} // namespace

void
writePerfetto(std::ostream &os, const std::vector<Event> &events,
              const PerfettoOptions &opt)
{
    TraceSummary sum = summarize(events);
    const int sysTid =
        static_cast<int>(sum.numCores) + static_cast<int>(sum.numMcs);
    auto trackOf = [&](const Event &e) {
        if (e.unit < 0)
            return sysTid;
        return mcScoped(e.type) ? static_cast<int>(sum.numCores) + e.unit
                                : e.unit;
    };

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    EventWriter w(os);

    // Metadata: process and track names.
    w.open('M', 0, 0);
    os << ",\"name\":\"process_name\",\"args\":{\"name\":\""
       << jsonEscape(opt.processName) << "\"}";
    w.close();
    for (unsigned c = 0; c < sum.numCores; ++c) {
        w.open('M', 0, static_cast<int>(c));
        os << ",\"name\":\"thread_name\",\"args\":{\"name\":\"core" << c
           << "\"}";
        w.close();
    }
    for (unsigned m = 0; m < sum.numMcs; ++m) {
        w.open('M', 0, static_cast<int>(sum.numCores + m));
        os << ",\"name\":\"thread_name\",\"args\":{\"name\":\"mc" << m
           << "\"}";
        w.close();
    }
    w.open('M', 0, sysTid);
    os << ",\"name\":\"thread_name\",\"args\":{\"name\":\"system\"}";
    w.close();

    // Per-core span depth: a trace that starts mid-run (ring wrap) can
    // open with an unmatched close; drop those so B/E stay balanced.
    std::map<int, unsigned> depth;
    // Previous ServeMark tick per core: each mark closes one request
    // span stretching back to the preceding mark.
    std::map<int, Tick> lastMark;

    for (const Event &e : events) {
        int tid = trackOf(e);
        const char *cat = categoryName(categoryOf(e.type));
        switch (e.type) {
          case EventType::RegionBegin:
            ++depth[tid];
            w.open('B', e.tick, tid);
            os << ",\"name\":\"region " << e.region << "\",\"cat\":\""
               << cat << "\",\"args\":{\"thread\":" << e.thread << "}";
            w.close();
            break;
          case EventType::RegionClose: {
            auto it = depth.find(tid);
            if (it == depth.end() || it->second == 0)
                break;  // wrap artifact: close without matching open
            --it->second;
            w.open('E', e.tick, tid);
            w.close();
            break;
          }
          case EventType::WpqEnqueue:
          case EventType::WpqRelease: {
            std::uint64_t occ = e.type == EventType::WpqRelease
                                    ? releaseOccupancy(e.aux)
                                    : e.aux;
            w.open('C', e.tick, tid);
            os << ",\"name\":\"mc" << e.unit
               << ".wpq_occupancy\",\"cat\":\"" << cat
               << "\",\"args\":{\"entries\":" << occ << "}";
            w.close();
            break;
          }
          case EventType::ServeMark: {
            // Complete span per served op: previous mark on this core
            // (first mark: trace start) to this retirement tick.
            Tick start = 0;
            auto it = lastMark.find(tid);
            if (it != lastMark.end())
                start = it->second;
            w.open('X', start, tid);
            os << ",\"dur\":" << (e.tick - start) << ",\"name\":\"serve op "
               << e.value << "\",\"cat\":\"" << cat
               << "\",\"args\":{\"served\":" << e.value
               << ",\"bdry_stall_cum\":" << e.aux << "}";
            w.close();
            lastMark[tid] = e.tick;
            break;
          }
          default:
            w.open('i', e.tick, tid);
            os << ",\"name\":\"" << eventTypeName(e.type)
               << (e.region != invalidRegion
                       ? " r" + std::to_string(e.region)
                       : std::string())
               << "\",\"s\":\"t\",\"cat\":\"" << cat << "\"";
            w.close();
            break;
        }
    }
    os << "\n]}\n";
}

bool
writePerfettoFile(const std::string &path,
                  const std::vector<Event> &events,
                  const PerfettoOptions &opt)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writePerfetto(os, events, opt);
    os.flush();
    return static_cast<bool>(os);
}

// ---- Text dump -------------------------------------------------------------

void
writeText(std::ostream &os, const std::vector<Event> &events)
{
    for (const Event &e : events) {
        os << std::setw(10) << e.tick << ' ' << std::left << std::setw(16)
           << eventTypeName(e.type) << std::right << " unit=" << e.unit
           << " thr=" << e.thread;
        if (e.region != invalidRegion)
            os << " region=" << e.region;
        if (e.addr != 0)
            os << " addr=0x" << std::hex << e.addr << std::dec;
        if (e.type == EventType::WpqRelease) {
            os << " occ=" << releaseOccupancy(e.aux)
               << " kind=" << releaseKind(e.aux);
        } else if (e.aux != 0) {
            os << " aux=" << e.aux;
        }
        os << '\n';
    }
}

} // namespace trace
} // namespace lwsp
