/**
 * @file
 * Trace exporters: compact binary format and Chrome/Perfetto
 * trace_event JSON.
 *
 * Binary (`.lwsptrc`): an 8-byte magic, a version word and a record
 * count, followed by fixed 56-byte little-endian records — written and
 * read field by field so the file is independent of host struct
 * padding. This is what `--trace-out` flags produce and what the
 * `lwsp_trace` CLI inspects, filters and converts.
 *
 * Perfetto JSON: the trace_event format (the object form, with a
 * `traceEvents` array) that https://ui.perfetto.dev and
 * chrome://tracing load directly. The mapping:
 *   - regions become B/E duration spans on one track per core;
 *   - WPQ occupancy becomes one counter track per MC (from the
 *     occupancy carried by enqueue/release events);
 *   - boundary/commit/power events become instant events on the
 *     emitting unit's track;
 *   - simulated cycles map 1:1 onto trace_event microseconds (the
 *     viewer's "us" axis reads as cycles).
 */

#ifndef LWSP_TRACE_EXPORT_HH
#define LWSP_TRACE_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/events.hh"

namespace lwsp {
namespace trace {

/** Binary-format magic (first 8 bytes of every trace file). */
constexpr char binaryMagic[8] = {'L', 'W', 'S', 'P',
                                 'T', 'R', 'C', '1'};

/** Serialize @p events; @return false on I/O failure. */
bool writeBinary(std::ostream &os, const std::vector<Event> &events);
bool writeBinaryFile(const std::string &path,
                     const std::vector<Event> &events);

/**
 * Parse a binary trace. @return false (with @p err set) on bad magic,
 * version mismatch or truncation.
 */
bool readBinary(std::istream &is, std::vector<Event> &out,
                std::string &err);
bool readBinaryFile(const std::string &path, std::vector<Event> &out,
                    std::string &err);

/** Keep only events whose category is in @p mask. */
std::vector<Event> filterByMask(const std::vector<Event> &events,
                                std::uint32_t mask);

/** Perfetto export knobs. */
struct PerfettoOptions
{
    std::string processName = "lwsp";
};

/** Emit trace_event JSON for @p events (core/MC counts are derived). */
void writePerfetto(std::ostream &os, const std::vector<Event> &events,
                   const PerfettoOptions &opt = {});
bool writePerfettoFile(const std::string &path,
                       const std::vector<Event> &events,
                       const PerfettoOptions &opt = {});

/** One human-readable line per event (the `lwsp_trace dump` format). */
void writeText(std::ostream &os, const std::vector<Event> &events);

/** Per-category counts, tick range, unit counts (`lwsp_trace info`). */
struct TraceSummary
{
    std::size_t events = 0;
    Tick firstTick = 0;
    Tick lastTick = 0;
    unsigned numCores = 0;  ///< distinct core-scoped units seen
    unsigned numMcs = 0;    ///< distinct MC-scoped units seen
    std::size_t perType[numEventTypes] = {};
};

TraceSummary summarize(const std::vector<Event> &events);

} // namespace trace
} // namespace lwsp

#endif // LWSP_TRACE_EXPORT_HH
