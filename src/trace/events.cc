#include "trace/events.hh"

#include <cstring>
#include <initializer_list>

namespace lwsp {
namespace trace {

const char *
eventTypeName(EventType t)
{
    switch (t) {
      case EventType::RegionBegin: return "region-begin";
      case EventType::RegionClose: return "region-close";
      case EventType::RegionPersist: return "region-persist";
      case EventType::BoundaryBcastSend: return "bdry-send";
      case EventType::BoundaryBcastRecv: return "bdry-recv";
      case EventType::BoundaryAck: return "bdry-ack";
      case EventType::WpqEnqueue: return "wpq-enqueue";
      case EventType::WpqRelease: return "wpq-release";
      case EventType::WpqDrainDone: return "wpq-drain-done";
      case EventType::CacheWriteback: return "cache-writeback";
      case EventType::CheckpointStore: return "ckpt-store";
      case EventType::PowerFailure: return "power-failure";
      case EventType::CrashDrainEnd: return "crash-drain-end";
      case EventType::Recovery: return "recovery";
      case EventType::CtxSwitch: return "ctx-switch";
      case EventType::BcastRetry: return "bcast-retry";
      case EventType::FaultInjected: return "fault-injected";
      case EventType::RecoveryVerdict: return "recovery-verdict";
      case EventType::ServeMark: return "serve-mark";
    }
    return "<bad>";
}

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Region: return "region";
      case Category::Boundary: return "boundary";
      case Category::Wpq: return "wpq";
      case Category::Cache: return "cache";
      case Category::Checkpoint: return "checkpoint";
      case Category::Power: return "power";
      case Category::Sched: return "sched";
      case Category::Serve: return "serve";
    }
    return "<bad>";
}

std::uint32_t
parseCategory(const char *name)
{
    for (Category c : {Category::Region, Category::Boundary, Category::Wpq,
                       Category::Cache, Category::Checkpoint,
                       Category::Power, Category::Sched, Category::Serve}) {
        if (std::strcmp(name, categoryName(c)) == 0)
            return categoryBit(c);
    }
    return 0;
}

} // namespace trace
} // namespace lwsp
