/**
 * @file
 * The event sink: a lock-free single-producer ring buffer.
 *
 * Each System owns one sink and runs on exactly one thread (parallel
 * sweeps parallelize across Systems, never within one), so emission is
 * a bounds-checked store plus an index increment — no atomics, no
 * locks, no allocation after construction. When the ring wraps, the
 * oldest events are overwritten: a trace is a window ending at the
 * interesting moment (a crash, the end of a run), which is exactly
 * what wrapping preserves.
 *
 * Zero-cost discipline (same as the LRPO oracles): components hold a
 * `TraceSink *` that is null unless `SystemConfig::traceEnabled`; every
 * emit site is a null-pointer check. On top of that the compile-time
 * LWSP_TRACE_MASK can fold whole categories out of the binary.
 */

#ifndef LWSP_TRACE_SINK_HH
#define LWSP_TRACE_SINK_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "trace/events.hh"

namespace lwsp {
namespace trace {

class TraceSink
{
  public:
    /**
     * @param capacity ring size in events (power of two not required)
     * @param mask run-time category filter (default: everything)
     */
    explicit TraceSink(std::size_t capacity = defaultCapacity,
                       std::uint32_t mask = allCategories)
        : mask_(mask), ring_(capacity)
    {
        LWSP_ASSERT(capacity > 0, "trace ring needs capacity");
    }

    /** Ring capacity used when the config does not override it. */
    static constexpr std::size_t defaultCapacity = 1u << 16;

    /** @return true if @p c passes the run-time mask. */
    bool
    wants(Category c) const
    {
        return (mask_ & categoryBit(c)) != 0;
    }

    std::uint32_t mask() const { return mask_; }
    void setMask(std::uint32_t mask) { mask_ = mask; }

    /** Record @p e (category-filtered; overwrites the oldest on wrap). */
    void
    emit(const Event &e)
    {
        if (!wants(categoryOf(e.type)))
            return;
        ring_[head_] = e;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        ++emitted_;
    }

    /** Events ever accepted (>= size() once the ring has wrapped). */
    std::uint64_t emitted() const { return emitted_; }

    /** Events currently retained. */
    std::size_t
    size() const
    {
        return emitted_ < ring_.size() ? static_cast<std::size_t>(emitted_)
                                       : ring_.size();
    }

    std::size_t capacity() const { return ring_.size(); }
    bool wrapped() const { return emitted_ > ring_.size(); }

    /** Retained events, oldest first (chronological). */
    std::vector<Event>
    snapshot() const
    {
        std::vector<Event> out;
        std::size_t n = size();
        out.reserve(n);
        std::size_t start = wrapped() ? head_ : 0;
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(ring_[(start + i) % ring_.size()]);
        return out;
    }

    void
    clear()
    {
        head_ = 0;
        emitted_ = 0;
    }

  private:
    std::uint32_t mask_;
    std::vector<Event> ring_;
    std::size_t head_ = 0;
    std::uint64_t emitted_ = 0;
};

/**
 * Emit helper for component hook sites: compile-time category test
 * first (folds the whole statement away for masked-out categories),
 * then the null-sink test, then the run-time mask inside emit().
 */
template <Category C>
inline void
emitIf(TraceSink *sink, const Event &e)
{
    if constexpr (categoryCompiled(C)) {
        if (sink != nullptr)
            sink->emit(e);
    }
}

} // namespace trace
} // namespace lwsp

#endif // LWSP_TRACE_SINK_HH
