/**
 * @file
 * Typed simulator events: the vocabulary of the telemetry subsystem.
 *
 * Every figure in the paper is a projection of these events — region
 * lifetimes (tab VG3), WPQ occupancy over time (figs 11/18), boundary
 * broadcast latency (fig 7's LRPO stalls) — so they are first-class:
 * fixed-size PODs a component can emit in a couple of stores, cheap
 * enough to leave compiled in and gate at run time (the LRPO-oracle
 * discipline), yet carrying enough identity (unit, thread, region,
 * address) for the exporters to rebuild per-core span tracks and
 * per-MC counter tracks without any component-specific knowledge.
 *
 * Categories are bit flags. A compile-time mask (LWSP_TRACE_MASK) can
 * remove whole categories from the binary; the run-time sink mask
 * filters what remains. Both default to everything.
 */

#ifndef LWSP_TRACE_EVENTS_HH
#define LWSP_TRACE_EVENTS_HH

#include <cstdint>

#include "common/types.hh"

namespace lwsp {
namespace trace {

/** Event categories (bit flags; combine with |). */
enum class Category : std::uint32_t
{
    Region     = 1u << 0,  ///< region begin/close/persist lifecycle
    Boundary   = 1u << 1,  ///< boundary broadcast send/arrive/ack
    Wpq        = 1u << 2,  ///< WPQ enqueue/release/drain
    Cache      = 1u << 3,  ///< cache writebacks
    Checkpoint = 1u << 4,  ///< compiler checkpoint stores reaching PM path
    Power      = 1u << 5,  ///< power failure, crash drain, recovery
    Sched      = 1u << 6,  ///< context switches
    Serve      = 1u << 7,  ///< service-workload request markers
};

constexpr std::uint32_t allCategories = 0xffu;

constexpr std::uint32_t
categoryBit(Category c)
{
    return static_cast<std::uint32_t>(c);
}

/**
 * Compile-time category mask. Define LWSP_TRACE_MASK to a reduced mask
 * to compile categories out entirely (their emit sites fold to nothing
 * under constant propagation); the default keeps everything and leaves
 * filtering to the run-time gate.
 */
#ifndef LWSP_TRACE_MASK
#define LWSP_TRACE_MASK ::lwsp::trace::allCategories
#endif

constexpr bool
categoryCompiled(Category c)
{
    return (static_cast<std::uint32_t>(LWSP_TRACE_MASK) &
            categoryBit(c)) != 0;
}

/** Concrete event types (each belongs to exactly one Category). */
enum class EventType : std::uint8_t
{
    // Category::Region
    RegionBegin,      ///< thread enters a fresh region (unit=core)
    RegionClose,      ///< boundary retired, region closed (unit=core)
    RegionPersist,    ///< region committed: MC flush-ID advance (unit=mc)

    // Category::Boundary
    BoundaryBcastSend,  ///< boundary exited a core's persist path
    BoundaryBcastRecv,  ///< broadcast delivered at an MC (unit=mc)
    BoundaryAck,        ///< peer bdry-ACK received (unit=mc, aux=from)

    // Category::Wpq
    WpqEnqueue,       ///< entry accepted (unit=mc, aux=occupancy after)
    WpqRelease,       ///< entry released to PM (aux packs occupancy/kind)
    WpqDrainDone,     ///< local flush of a region finished (unit=mc)

    // Category::Cache
    CacheWriteback,   ///< dirty line displaced (unit=core, -1 for L2)

    // Category::Checkpoint
    CheckpointStore,  ///< CkptStore retired (unit=core, addr=slot)

    // Category::Power
    PowerFailure,     ///< power lost; §IV-F crash drain starts
    CrashDrainEnd,    ///< crash drain reached quiescence
    Recovery,         ///< successor system built from the PM image

    // Category::Sched
    CtxSwitch,        ///< core switched threads (unit=core)

    // Appended after the fault-injection subsystem landed; new types go
    // at the end so the binary trace format stays bit-compatible.

    // Category::Boundary
    BcastRetry,       ///< router re-sent a lost broadcast (aux=attempt)

    // Category::Power
    FaultInjected,    ///< fault layer acted (value=axis, aux=detail)
    RecoveryVerdict,  ///< recovery classified (value=RecoveryOutcome)

    // Category::Serve (appended with the serve subsystem; end of enum
    // for binary-format compatibility)
    ServeMark,        ///< served-counter store retired (unit=core,
                      ///< value=served count, aux=cumulative
                      ///< boundary-stall cycles on that core)
};

constexpr std::uint8_t numEventTypes =
    static_cast<std::uint8_t>(EventType::ServeMark) + 1;

/** The Category an EventType belongs to. */
constexpr Category
categoryOf(EventType t)
{
    switch (t) {
      case EventType::RegionBegin:
      case EventType::RegionClose:
      case EventType::RegionPersist:
        return Category::Region;
      case EventType::BoundaryBcastSend:
      case EventType::BoundaryBcastRecv:
      case EventType::BoundaryAck:
      case EventType::BcastRetry:
        return Category::Boundary;
      case EventType::WpqEnqueue:
      case EventType::WpqRelease:
      case EventType::WpqDrainDone:
        return Category::Wpq;
      case EventType::CacheWriteback:
        return Category::Cache;
      case EventType::CheckpointStore:
        return Category::Checkpoint;
      case EventType::PowerFailure:
      case EventType::CrashDrainEnd:
      case EventType::Recovery:
      case EventType::FaultInjected:
      case EventType::RecoveryVerdict:
        return Category::Power;
      case EventType::CtxSwitch:
        return Category::Sched;
      case EventType::ServeMark:
        return Category::Serve;
    }
    return Category::Power;
}

const char *eventTypeName(EventType t);
const char *categoryName(Category c);

/** Parse "region", "wpq", ... (case-sensitive); 0 on failure. */
std::uint32_t parseCategory(const char *name);

/**
 * One telemetry event. Fixed layout, no pointers: the binary format
 * serializes these field by field and the ring buffer stores them by
 * value. `unit` is the emitting core or MC index (the event type
 * disambiguates which), -1 when not applicable.
 */
struct Event
{
    Tick tick = 0;
    EventType type = EventType::RegionBegin;
    std::int32_t unit = -1;
    ThreadId thread = 0;
    RegionId region = invalidRegion;
    Addr addr = 0;
    std::uint64_t value = 0;
    /**
     * Type-specific payload: WPQ occupancy after enqueue/release (the
     * counter-track source), release kind in the high byte for
     * WpqRelease (0 normal, 1 fallback, 2 shadow-absorbed, 3 undo
     * restore), sender MC for BoundaryAck, incoming thread for
     * CtxSwitch.
     */
    std::uint64_t aux = 0;
};

/** Pack/unpack the WpqRelease aux field (occupancy + release kind). */
constexpr std::uint64_t
packReleaseAux(std::size_t occupancy, int kind)
{
    return (static_cast<std::uint64_t>(kind) << 56) |
           (static_cast<std::uint64_t>(occupancy) & 0x00ff'ffff'ffff'ffffull);
}

constexpr int
releaseKind(std::uint64_t aux)
{
    return static_cast<int>(aux >> 56);
}

constexpr std::uint64_t
releaseOccupancy(std::uint64_t aux)
{
    return aux & 0x00ff'ffff'ffff'ffffull;
}

} // namespace trace
} // namespace lwsp

#endif // LWSP_TRACE_EVENTS_HH
